"""Federated server base class — the phased round protocol.

Algorithm 1's server loop is naturally phased, and every reproduced
method is expressed against the same four overridable phases, driven by
the shared :meth:`FederatedServer.fit` loop:

``select_cohort()``
    Pick the round's active clients (uniform sampling by default;
    CluSamp overrides with cluster-stratified sampling).
``dispatch(active)``
    Build one :class:`DispatchPlan` per active client: the state to
    train from plus optional loss/grad hooks (FedProx's proximal term,
    SCAFFOLD's control variates, FedGen's distillation) and free-form
    ``context`` carried through to aggregation.
``collect(active, plans)``
    Run local training and gather uploads.  The default implementation
    hands the cohort to the server's :class:`~repro.fl.execution
    .ClientExecutor` (``serial`` | ``thread`` | ``process``, selected by
    ``config.execution`` / ``config.workers``), which trains each plan
    and packs the uploaded state into a reused server-side
    :class:`~repro.core.pool.PoolBuffer` row (``plan.context["row"]``,
    defaulting to the client's position), so aggregation is array ops
    instead of per-key dict loops.  All execution backends reproduce
    the serial schedule bit-for-bit (see :mod:`repro.fl.execution`).
``aggregate(active, results, plans)``
    The method-specific model update; returns a dict of extras stored
    on the round record.  FedAvg-family methods reduce the upload
    buffer with one BLAS matvec (:meth:`aggregate_uploads`).

``run_round`` is the phase driver; methods whose round is not the
dispatch→collect→aggregate shape (FedCluster's cyclic cluster schedule)
may still override it wholesale.

:class:`~repro.fl.callbacks.ServerCallback` hooks (``on_round_start``,
``on_evaluate``, ``on_round_end``, ``on_fit_end``) observe the loop and
may set ``server.stop_training`` to end training early.  The pool/upload
buffers live on the storage backend named by ``config.backend``
(``dense`` | ``memmap`` — see :mod:`repro.core.storage`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping, Sequence

import numpy as np

from repro.data.federated import FederatedDataset
from repro.fl.client import Client
from repro.fl.comm import CommunicationLedger
from repro.fl.config import FLConfig
from repro.fl.execution import ClientExecutor
from repro.fl.hooks import HookSpec
from repro.fl.metrics import RoundRecord, TrainingHistory, evaluate_model
from repro.fl.trainer import GradHook, LocalResult, LocalTrainer, LossHook
from repro.nn.module import Module
from repro.utils.layout import StateLayout

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pool import PoolBuffer
    from repro.fl.callbacks import ServerCallback

__all__ = ["DispatchPlan", "FederatedServer"]


@dataclass
class DispatchPlan:
    """What one active client receives for its local-training leg.

    ``context`` is free-form method state threaded from ``dispatch`` to
    ``aggregate`` (e.g. SCAFFOLD's per-client control variate); it stays
    on the server and is never shipped to execution workers. The
    reserved key ``"row"`` names the upload-buffer row the client's
    result is packed into (defaults to the client's cohort position;
    FedCross uses it to keep rows in middleware-model order).

    ``loss_hook`` / ``grad_hook`` accept either a raw callable (runs on
    ``serial``/``thread`` backends only) or a picklable
    :class:`~repro.fl.hooks.HookSpec`, resolved where the training
    executes — required for the ``process`` backend.  A raw callable
    that closes over shared mutable state (an RNG, an accumulator) is
    only deterministic on ``serial``: ``thread`` invokes hooks in
    completion order.  Specs with per-client state keep every backend
    bit-identical.
    """

    state: Mapping[str, np.ndarray]
    loss_hook: "LossHook | HookSpec | None" = None
    grad_hook: "GradHook | HookSpec | None" = None
    lr_override: float | None = None
    context: dict = field(default_factory=dict)


class FederatedServer:
    """Base class for all FL methods.

    Parameters
    ----------
    config:
        The run specification.
    fed_dataset:
        Client shards + global test set.
    model:
        The shared scratch model (also used for evaluation).
    trainer:
        Local-training engine bound to ``model``.
    clients:
        The full client population.
    rng:
        Server-side generator (client sampling, shuffling, ...).
    callbacks:
        :class:`~repro.fl.callbacks.ServerCallback` hooks observing the
        ``fit`` loop.
    executor:
        Optional pre-built :class:`~repro.fl.execution.ClientExecutor`;
        by default one is assembled from ``config.execution`` /
        ``config.workers``.
    model_factory:
        Zero-argument picklable callable rebuilding the model template —
        used by parallel execution backends to give every worker its own
        model/trainer.  The simulation wires this automatically; when
        omitted, workers deep-copy ``trainer.model`` (which the
        ``process`` backend can only do if the model pickles).
    """

    method_name = "base"

    def __init__(
        self,
        config: FLConfig,
        fed_dataset: FederatedDataset,
        model: Module,
        trainer: LocalTrainer,
        clients: Sequence[Client],
        rng: np.random.Generator,
        callbacks: "Iterable[ServerCallback] | None" = None,
        executor: ClientExecutor | None = None,
        model_factory=None,
    ) -> None:
        self.config = config
        self.fed_dataset = fed_dataset
        self.model = model
        self.trainer = trainer
        self.clients = list(clients)
        self.rng = rng
        self.callbacks: list[ServerCallback] = list(callbacks or [])
        self.ledger = CommunicationLedger()
        self.history = TrainingHistory()
        self.model_size = model.num_parameters()
        self.round_idx = 0
        self.stop_training = False
        self.backend = getattr(config, "backend", "dense")
        # Resilience: the seeded fault model (None without a scenario)
        # and the round policy the engine enforces.  Built before the
        # storage options so an engaged non-`fail` policy can ask the
        # distributed backend for replicated (failover-capable) buffers.
        faults = getattr(config, "faults", None)
        if faults is not None:
            from repro.faults.model import ClientPopulation  # lazy

            self.fault_model = ClientPopulation(
                faults,
                seed=getattr(config, "seed", 0),
                num_clients=len(self.clients),
            )
        else:
            self.fault_model = None
        from repro.faults.policy import RoundPolicy  # lazy, stdlib-only

        self.fault_policy = RoundPolicy.from_config(config)
        self.last_leg_failures: list = []
        self._round_leg_comm: "tuple[int, int] | None" = None
        # Injectable seams: ``fault_sleep`` replaces the resilience
        # engine's backoff sleep (tests wait in virtual time) and
        # ``round_scheduler`` overrides the config-built schedule.
        self.fault_sleep = None
        self.round_scheduler = None
        # Aggregation operator for both aggregation sites (CrossAggr
        # blends and GlobalModelGen / upload averaging).  The default
        # "mean" delegates to mean_state/cross_aggregate and is bitwise
        # the pre-registry reference path.
        from repro.robust.operators import build_operator  # lazy

        self.aggregator = build_operator(
            getattr(config, "aggregator", "mean"),
            getattr(config, "aggregator_params", None),
        )
        self.screen = getattr(config, "screen", None)
        self.last_suspects: list = []
        # Storage options forwarded to the pool backend's allocate();
        # only option-accepting backends (sharded) see a non-empty dict.
        self.backend_options: dict = {}
        shards = getattr(config, "shards", None)
        if shards is not None:
            self.backend_options["shards"] = shards
        placement = getattr(config, "shard_placement", None)
        if placement is not None:
            self.backend_options["placement"] = placement
        hosts = getattr(config, "hosts", None)
        if hosts is not None:
            self.backend_options["hosts"] = hosts
        if (
            self.backend == "distributed"
            and self.fault_policy.engaged
            and self.fault_policy.failure_policy != "fail"
        ):
            # Coordinator-side row mirror: a killed shard host can be
            # respawned and its rows restored instead of raising.
            self.backend_options["replicate"] = True
        self.streaming = bool(getattr(config, "streaming", True))
        self.executor = executor or ClientExecutor(
            getattr(config, "execution", "serial"),
            trainer=trainer,
            clients=self.clients,
            model_factory=model_factory,
            workers=getattr(config, "workers", None),
            array_backend=getattr(config, "array_backend", None),
            ledger=self.ledger,
        )
        self._layout = StateLayout.from_state(model.state_dict())
        self._uploads: "PoolBuffer | None" = None
        self._upload_rows: list[int] = []
        self._pack_cache: dict = {}
        # Reused model-layout buffers keyed by (tag, size): "round" for
        # the default collect, "cohort" for ad-hoc train_cohort calls —
        # distinct tags so the two can never alias within one round.
        self._buffer_cache: dict = {}

    # -- phase hooks ------------------------------------------------------
    def select_cohort(self) -> list[Client]:
        """Pick this round's active clients (uniform K-sample; paper: 10%).

        With a fault scenario the draw is availability-aware (the
        population prefers reachable clients, padding with unavailable
        ones only when fewer than K are up); an all-available round —
        and any run without a scenario — is the exact reference draw.
        """
        k = self.config.clients_per_round
        if self.fault_model is not None:
            return self.fault_model.select_cohort(
                self.clients, k, self.round_idx, self.rng
            )
        idx = self.rng.choice(len(self.clients), size=k, replace=False)
        return [self.clients[i] for i in idx]

    def dispatch(self, active: list[Client]) -> list[DispatchPlan]:
        """One plan per active client; default: the global model, no hooks."""
        state = self.global_state()
        return [DispatchPlan(state) for _ in active]

    def collect(
        self, active: list[Client], plans: list[DispatchPlan]
    ) -> list[LocalResult]:
        """Run local training and pack each upload into the pool buffer.

        A thin delegation to the configured execution backend: the
        backend trains every plan (serially or across workers), writes
        each trained state into its upload-buffer row, and the results
        come back in plan order — bit-identical across backends.

        With ``config.streaming`` (the default) the backend's
        as-completed stream is consumed instead of its gathered run:
        each upload is packed — and :meth:`on_upload` fired — the
        moment its leg lands, overlapping server-side per-upload work
        (e.g. FedCross's incremental Gram updates) with still-running
        training legs.  Both modes produce bit-identical uploads,
        results and RNG state; ``streaming=False`` keeps the gathered
        reference schedule (``on_upload`` then fires in plan order
        after the last leg).
        """
        uploads = self._round_uploads(len(active))
        rows = [plan.context.get("row", i) for i, plan in enumerate(plans)]
        if self.fault_policy.engaged:
            # The resilience engine owns the round: simulated faults are
            # pre-dropped, infra failures retried / recovered, and the
            # survivors checked against the quorum.  Never engaged by a
            # default config, so the branch below stays the untouched
            # bit-identical reference.
            from repro.faults.engine import resilient_collect  # lazy

            self.last_leg_failures = []
            self._round_leg_comm = None
            results = resilient_collect(self, active, plans, rows, uploads)
            self._upload_rows = rows[: len(results)]
            return results
        if self.streaming:
            n = min(len(active), len(plans))
            results: list[LocalResult | None] = [None] * n
            for i, result in self.executor.run_streaming(
                self.trainer, active, plans, rows, uploads
            ):
                results[i] = result
                self.on_upload(rows[i], result)
        else:
            results = self.executor.run(self.trainer, active, plans, rows, uploads)
            for i, result in enumerate(results):
                self.on_upload(rows[i], result)
        self._upload_rows = rows[: len(results)]
        return results

    def on_upload(self, row: int, result: LocalResult) -> None:
        """Per-upload hook: ``result`` just landed in buffer row ``row``.

        Called once per collected leg — in completion order while other
        legs are still training when ``config.streaming`` is on, in
        plan order after the gathered run otherwise.  Overrides must
        therefore be *order-independent* (FedCross's Gram row updates
        are, by construction).  Default: no-op.
        """

    def aggregate(
        self,
        active: list[Client],
        results: list[LocalResult],
        plans: list[DispatchPlan],
    ) -> dict:
        """Method-specific model update; returns round-record extras."""
        raise NotImplementedError

    def run_round(self, active: list[Client]) -> dict:
        """Phase driver: dispatch → collect → aggregate.

        Methods with a fundamentally different round shape (e.g.
        FedCluster's sequential cluster schedule) may override this
        wholesale instead of the individual phases.
        """
        plans = self.dispatch(active)
        results = self.collect(active, plans)
        return self.aggregate(active, results, plans)

    def global_state(self) -> dict:
        """State dict of the deployable global model."""
        raise NotImplementedError

    def set_global_state(self, state: Mapping[str, np.ndarray]) -> None:
        """Install ``state`` (deep-copied) as the deployable global model.

        Used by checkpointing callbacks to restore a best state.
        Subclasses holding richer deployables (e.g. FedCross's
        middleware pool) override.
        """
        self._global = {k: np.array(v, copy=True) for k, v in state.items()}

    # -- legacy alias ------------------------------------------------------
    def sample_clients(self) -> list[Client]:
        """Deprecated alias of :meth:`select_cohort`."""
        return self.select_cohort()

    # -- pool-backed aggregation helpers -----------------------------------
    def _model_buffer(self, tag: str, k: int) -> "PoolBuffer":
        """Reused ``(k, P)`` model-layout buffer on the configured backend.

        One allocation per (tag, size) for the whole run; the returned
        buffer is overwritten by the next same-key call.
        """
        from repro.core.pool import PoolBuffer  # lazy: avoids fl<->core cycle

        buf = self._buffer_cache.get((tag, k))
        if buf is None:
            buf = PoolBuffer.zeros(
                self._layout, k, dtype=np.float32, backend=self.backend,
                backend_options=self.backend_options,
            )
            self._buffer_cache[(tag, k)] = buf
        return buf

    def _round_uploads(self, k: int) -> "PoolBuffer":
        """The reused ``(k, P)`` upload buffer on the configured backend."""
        self._uploads = self._model_buffer("round", k)
        return self._uploads

    @property
    def uploads(self) -> "PoolBuffer | None":
        """The current round's packed upload buffer (None before round 1)."""
        return self._uploads

    def pack_states(
        self, states: Sequence[Mapping[str, np.ndarray]], dtype=np.float32
    ) -> "PoolBuffer":
        """Pack state dicts into a reused buffer on the backend.

        The layout is derived from the states themselves (cached by
        structural signature), so this also fits side-channel state like
        SCAFFOLD's param-only control variates.  Buffers are cached per
        (layout, size, dtype) and overwritten on each call — one
        allocation (and, on memmap, one backing file) per shape for the
        whole run — so the returned buffer is only valid until the next
        same-shape ``pack_states`` call.
        """
        from repro.core.pool import PoolBuffer  # lazy: avoids fl<->core cycle

        states = list(states)
        if not states:
            raise ValueError("cannot pack an empty sequence of states")
        layout = StateLayout.from_state(states[0])
        # Layouts are interned for the process lifetime (_LAYOUT_CACHE),
        # so identity is a stable cache key.
        key = (id(layout), len(states), np.dtype(dtype).str)
        buf = self._pack_cache.get(key)
        if buf is None:
            buf = PoolBuffer.zeros(
                layout, len(states), dtype=dtype, backend=self.backend,
                backend_options=self.backend_options,
            )
            self._pack_cache[key] = buf
        for i, state in enumerate(states):
            buf.set_state(i, state)
        return buf

    def train_cohort(
        self, members: list[Client], plans: list[DispatchPlan]
    ) -> "tuple[list[LocalResult], PoolBuffer]":
        """Train an ad-hoc cohort through the execution backend.

        For schedules outside the default phase driver (e.g.
        FedCluster's per-cluster visits): trains ``members`` from
        ``plans`` on the configured backend and returns the results
        plus the packed upload buffer (reused per cohort size, valid
        until the next same-size call).
        """
        buf = self._model_buffer("cohort", len(members))
        rows = [plan.context.get("row", i) for i, plan in enumerate(plans)]
        results = self.executor.run(self.trainer, members, plans, rows, buf)
        return results, buf

    def aggregate_uploads(self, results: Sequence[LocalResult]) -> dict:
        """Weighted reduction of the collected uploads.

        Routed through the configured aggregation operator; the default
        ``mean`` is one BLAS matvec over the upload buffer — the
        vectorized equivalent of FedAvg's ``weighted_average`` dict
        loop, bitwise the pre-operator path.  Weights follow the
        buffer-row placement recorded by ``collect`` (the
        ``plan.context["row"]`` feature), so custom row assignments
        cannot silently misweight the average (rank-based robust
        operators ignore them by design).
        """
        if self._uploads is None or len(self._uploads) != len(results):
            raise RuntimeError("collect() must pack uploads before aggregation")
        weights = [0.0] * len(results)
        for row, result in zip(self._upload_rows, results):
            weights[row] = result.num_samples
        return self.aggregator.combine(self._uploads, weights, precise=False)

    # -- shared machinery ------------------------------------------------
    def evaluate(self) -> tuple[float, float]:
        """Accuracy/loss of the deployable global model on the test set."""
        self.model.load_state_dict(self.global_state())
        return evaluate_model(
            self.model, self.fed_dataset.test, batch_size=self.config.eval_batch_size
        )

    def fit(
        self,
        rounds: int | None = None,
        callbacks: "Iterable[ServerCallback] | None" = None,
    ) -> TrainingHistory:
        """Run the FL training loop and return the history.

        ``callbacks`` are invoked *in addition to* the server's own
        ``self.callbacks``, in registration order.  A callback setting
        ``self.stop_training`` ends the loop after the current round.
        """
        rounds = rounds if rounds is not None else self.config.rounds
        cbs = self.callbacks + list(callbacks or [])
        self.stop_training = False
        # The round *schedule* is pluggable (repro.fl.scheduler): the
        # default "sync" scheduler is the historical loop body verbatim
        # — each round blocks on its slowest leg — while "async"
        # overlaps rounds under a bounded-staleness window.  An
        # explicitly injected ``round_scheduler`` wins over the config
        # (the test seam for injectable clocks).
        from repro.fl.scheduler import build_round_scheduler  # lazy: cycle

        scheduler = self.round_scheduler or build_round_scheduler(self.config)
        scheduler.run(self, rounds, cbs)
        # Method finalisation runs before callback on_fit_end hooks, so
        # diagnostics snapshot the *trained* state, not one mutated by
        # e.g. a checkpointer's best-state restore.
        self.finalize_fit(self.history)
        for cb in cbs:
            cb.on_fit_end(self, self.history)
        return self.history

    def finalize_fit(self, history: TrainingHistory) -> None:
        """Method-specific end-of-fit bookkeeping (default: none).

        Invoked by :meth:`fit` after the last round but before callback
        ``on_fit_end`` hooks may mutate server state.
        """

    # -- convenience -------------------------------------------------------
    def mean_local_loss(self, results) -> float:
        """Sample-weighted mean of local losses (progress diagnostic)."""
        total = sum(r.num_samples for r in results)
        if total == 0:
            return float("nan")
        return sum(r.mean_loss * r.num_samples for r in results) / total

    def charge_round_communication(self, active: list[Client], extra_down: int = 0, extra_up: int = 0) -> None:
        """Charge the standard 2K-model round cost plus method extras.

        A no-op when the execution backend marked this round's ledger
        *measured* (the ``distributed`` backend records the parameters
        actually crossing its sockets per leg) — the analytic charge
        would double-count what the transport already recorded.
        """
        if self.ledger.measured:
            return
        if self._round_leg_comm is not None:
            # The resilience engine counted actual leg traffic: one down
            # per (re)submission, one up per landing — simulated faults
            # and carried legs move nothing.  Matches what the measured
            # distributed transport records for the same fault pattern.
            downs, ups = self._round_leg_comm
            self.ledger.record_down(downs * self.model_size + extra_down)
            self.ledger.record_up(ups * self.model_size + extra_up)
            return
        k = len(active)
        self.ledger.record_down(k * self.model_size + extra_down)
        self.ledger.record_up(k * self.model_size + extra_up)
