"""Per-client evaluation and accuracy-fairness metrics.

The paper's Figure 1 narrative is about a global model that "works well
for client 1 [but] is unsuitable for client 2". These helpers quantify
that: evaluate the deployment model on every client's own shard and
summarise the dispersion of per-client accuracy. A flatter-valley
global model (FedCross's goal) should serve clients more evenly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.fl.client import Client
from repro.fl.metrics import evaluate_model
from repro.nn.module import Module

__all__ = ["ClientEvaluation", "evaluate_per_client", "fairness_summary"]


@dataclass
class ClientEvaluation:
    """Per-client accuracy/loss of one global model."""

    client_ids: list[int]
    accuracies: np.ndarray
    losses: np.ndarray

    @property
    def mean_accuracy(self) -> float:
        return float(self.accuracies.mean())

    @property
    def std_accuracy(self) -> float:
        return float(self.accuracies.std())

    @property
    def worst_accuracy(self) -> float:
        return float(self.accuracies.min())

    @property
    def best_accuracy(self) -> float:
        return float(self.accuracies.max())


def evaluate_per_client(
    model: Module,
    state: dict,
    clients: Sequence[Client],
    batch_size: int = 256,
) -> ClientEvaluation:
    """Evaluate ``state`` on every client's local shard."""
    model.load_state_dict(state)
    ids, accs, losses = [], [], []
    for client in clients:
        acc, loss = evaluate_model(model, client.dataset, batch_size=batch_size)
        ids.append(client.client_id)
        accs.append(acc)
        losses.append(loss)
    return ClientEvaluation(
        client_ids=ids, accuracies=np.array(accs), losses=np.array(losses)
    )


def fairness_summary(evaluation: ClientEvaluation) -> dict[str, float]:
    """Summary statistics of accuracy dispersion across clients.

    Returns mean / std / worst / best accuracy plus the Jain fairness
    index ``(sum a)^2 / (n * sum a^2)`` — 1.0 when all clients are
    served equally, 1/n in the maximally unfair case.
    """
    a = evaluation.accuracies
    denom = len(a) * float((a**2).sum())
    jain = float(a.sum()) ** 2 / denom if denom > 0 else 1.0
    return {
        "mean": evaluation.mean_accuracy,
        "std": evaluation.std_accuracy,
        "worst": evaluation.worst_accuracy,
        "best": evaluation.best_accuracy,
        "jain_index": jain,
    }
