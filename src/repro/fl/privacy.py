"""Differential-privacy hooks (paper Section IV-F).

The paper argues FedCross "can easily integrate existing privacy-
preserving techniques that are suitable for FedAvg". This module makes
that claim concrete: a DP-SGD-style gradient hook (per-step global-norm
clipping + calibrated Gaussian noise) that plugs into the shared
:class:`~repro.fl.trainer.LocalTrainer` of *every* method in this repo,
FedCross included.

This is the local-DP mechanism of Abadi et al. 2016 at the granularity
of minibatch gradients; the privacy accountant is deliberately simple
(per-step sigma, not Renyi composition) — enough to study the
utility/noise trade-off the paper alludes to.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = ["DPConfig", "make_dp_grad_hook", "gaussian_sigma_for"]


class DPConfig:
    """Clipping bound and noise scale for DP local training.

    Parameters
    ----------
    clip_norm:
        Global L2 bound applied jointly across all parameter gradients.
    noise_multiplier:
        Gaussian noise std as a multiple of ``clip_norm`` (sigma = z*C).
        0 disables noise (clipping only).
    seed:
        Seed of the noise stream.
    """

    def __init__(self, clip_norm: float = 1.0, noise_multiplier: float = 0.0, seed: int = 0):
        if clip_norm <= 0:
            raise ValueError(f"clip_norm must be positive, got {clip_norm}")
        if noise_multiplier < 0:
            raise ValueError(f"noise_multiplier must be >= 0, got {noise_multiplier}")
        self.clip_norm = float(clip_norm)
        self.noise_multiplier = float(noise_multiplier)
        self._rng = np.random.default_rng(seed)

    def __repr__(self) -> str:
        return f"DPConfig(clip={self.clip_norm}, z={self.noise_multiplier})"


def make_dp_grad_hook(config: DPConfig):
    """Build a ``grad_hook`` for LocalTrainer applying clip + noise.

    The hook computes the joint L2 norm over all parameter gradients,
    rescales them to at most ``clip_norm``, then adds
    ``N(0, (z * clip_norm)^2)`` noise element-wise.
    """

    def hook(named_params: dict) -> None:
        grads = [
            (name, p) for name, p in named_params.items() if p.grad is not None
        ]
        if not grads:
            return
        total = math.sqrt(sum(float((p.grad**2).sum()) for _, p in grads))
        scale = min(1.0, config.clip_norm / max(total, 1e-12))
        sigma = config.noise_multiplier * config.clip_norm
        for _, p in grads:
            g = p.grad * scale
            if sigma > 0:
                g = g + config._rng.normal(0.0, sigma, size=g.shape).astype(g.dtype)
            p.grad = g

    return hook


def gaussian_sigma_for(epsilon: float, delta: float, sensitivity: float = 1.0) -> float:
    """Classic Gaussian-mechanism calibration (one release).

    sigma >= sqrt(2 ln(1.25/delta)) * sensitivity / epsilon
    (Dwork & Roth 2014, Thm 3.22). For per-step DP-SGD accounting this
    is loose; it gives the right order of magnitude for experiments.
    """
    if epsilon <= 0 or not 0 < delta < 1:
        raise ValueError("require epsilon > 0 and 0 < delta < 1")
    return math.sqrt(2.0 * math.log(1.25 / delta)) * sensitivity / epsilon
