"""End-to-end simulation assembly.

``run_simulation(config)`` is the one-call experiment API: it builds the
federated dataset, the (deterministically initialised) model, the client
population with independent RNG streams, and the method's server; runs
the configured number of rounds; and returns a :class:`SimulationResult`
with the full history. All experiment harnesses and examples go through
this function.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from repro.data.federated import FederatedDataset, build_federated_dataset
from repro.fl.client import Client
from repro.fl.config import FLConfig
from repro.fl.metrics import TrainingHistory
from repro.fl.registry import build_server
from repro.fl.server import FederatedServer
from repro.fl.trainer import LocalTrainer
from repro.models.registry import build_model
from repro.utils.rng import spawn_rng

__all__ = ["FLSimulation", "SimulationResult", "run_simulation", "default_model_params"]


def default_model_params(config: FLConfig, fed_dataset: FederatedDataset) -> dict:
    """Infer model kwargs (input shape / classes / vocab) from the data."""
    params = dict(config.model_params)
    name = config.model.lower()
    if name in ("charlstm", "sentlstm"):
        params.setdefault("vocab_size", fed_dataset.meta.get("vocab_size", 64))
        if name == "sentlstm":
            params.setdefault("num_classes", fed_dataset.num_classes)
    elif name in ("mlp", "logreg"):
        shape = fed_dataset.clients[0].features.shape[1:]
        params.setdefault("input_dim", int(np.prod(shape)))
        params.setdefault("num_classes", fed_dataset.num_classes)
    else:  # vision models
        shape = fed_dataset.clients[0].features.shape[1:]
        params.setdefault("input_shape", tuple(int(s) for s in shape))
        params.setdefault("num_classes", fed_dataset.num_classes)
    return params


@dataclass
class SimulationResult:
    """Everything an experiment needs from one FL run."""

    config: FLConfig
    history: TrainingHistory
    final_state: dict
    extras: dict = field(default_factory=dict)

    @property
    def final_accuracy(self) -> float:
        return self.history.final_accuracy

    @property
    def best_accuracy(self) -> float:
        return self.history.best_accuracy


class FLSimulation:
    """Builder/runner pairing a config with its realised components.

    Splitting construction (``__init__``) from execution (``run``) lets
    callers share one federated dataset across methods — the fairness
    requirement of Section IV-A — via the ``fed_dataset`` argument.
    ``callbacks`` (:class:`~repro.fl.callbacks.ServerCallback`) are
    handed to the server and observe its phased ``fit`` loop.
    """

    def __init__(
        self,
        config: FLConfig,
        fed_dataset: FederatedDataset | None = None,
        callbacks: "Sequence | None" = None,
    ) -> None:
        self.config = config
        if config.array_backend is not None:
            # Activate before any model/tensor construction so templates,
            # init and training all live on the configured backend; the
            # executor's TrainerSpec carries the same name to process
            # workers, which activate it in spec.build().
            from repro.tensor.backend import set_array_backend

            set_array_backend(config.array_backend)
        root_streams = spawn_rng(config.seed, 3)
        self._server_rng, self._client_root, _ = root_streams

        if fed_dataset is None:
            fed_dataset = build_federated_dataset(
                config.dataset,
                num_clients=config.num_clients,
                heterogeneity=config.heterogeneity,
                seed=config.seed,
                **config.dataset_params,
            )
        if fed_dataset.num_clients != config.num_clients:
            raise ValueError(
                f"dataset provides {fed_dataset.num_clients} clients but config "
                f"expects {config.num_clients}"
            )
        self.fed_dataset = fed_dataset

        model_params = default_model_params(config, fed_dataset)
        self.model = build_model(config.model, seed=config.seed, **model_params)
        # Picklable recipe for the template model: parallel execution
        # backends use it to give every worker its own model instance.
        self.model_factory = functools.partial(
            build_model, config.model, seed=config.seed, **model_params
        )
        self.trainer = LocalTrainer(
            self.model,
            local_epochs=config.local_epochs,
            batch_size=config.batch_size,
            lr=config.lr,
            momentum=config.momentum,
            weight_decay=config.weight_decay,
        )
        client_rngs = spawn_rng(self._client_root, fed_dataset.num_clients)
        self.clients = [
            Client(i, shard, rng)
            for i, (shard, rng) in enumerate(zip(fed_dataset.clients, client_rngs))
        ]
        self.server: FederatedServer = build_server(
            config.method,
            config,
            fed_dataset,
            self.model,
            self.trainer,
            self.clients,
            self._server_rng,
            callbacks=callbacks,
            model_factory=self.model_factory,
        )

    def run(self) -> SimulationResult:
        """Run all configured rounds and package the result.

        Execution-backend resources (worker pools, shared-memory
        buffers) are released when the run finishes; they are re-created
        lazily if the server is fitted again.
        """
        try:
            history = self.server.fit()
        finally:
            self.server.executor.close()
        return SimulationResult(
            config=self.config,
            history=history,
            final_state=self.server.global_state(),
            extras=getattr(self.server, "result_extras", {}),
        )


def run_simulation(
    config: FLConfig,
    fed_dataset: FederatedDataset | None = None,
    callbacks: "Sequence | None" = None,
) -> SimulationResult:
    """Build and run an FL simulation in one call.

    ``callbacks`` are :class:`~repro.fl.callbacks.ServerCallback`
    instances observing the server's phased ``fit`` loop.
    """
    return FLSimulation(config, fed_dataset=fed_dataset, callbacks=callbacks).run()
