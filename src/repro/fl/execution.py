"""Pluggable client-execution backends for the ``collect`` phase.

The :class:`~repro.fl.server.FederatedServer`'s ``collect`` phase trains
the round's K active clients.  Mathematically those K local updates are
embarrassingly parallel — every client owns an independent RNG stream, a
private shard, and a dedicated upload-buffer row — but the original
implementation ran them strictly sequentially on one process, so a
round cost K× one local update regardless of core count.

This module makes *where the K updates run* a pluggable backend, in the
same registry style as :mod:`repro.core.storage`'s pool backends:

``serial``
    :class:`SerialExecution` — the original in-process loop on the
    server's shared trainer template.  The default, and the reference
    behaviour every other backend must reproduce bit-for-bit.
``thread``
    :class:`ThreadExecution` — a persistent thread pool, one private
    model/trainer template per worker thread.  Threads write their
    upload rows straight into the server's pool buffer.  Python-level
    training code still serialises on the GIL, so the win is bounded by
    the NumPy/BLAS fraction of the workload; useful mostly as the
    shared-memory stepping stone and for GIL-free builds.
``process``
    :class:`ProcessExecution` — a persistent ``ProcessPoolExecutor``
    whose workers each hold a reusable model/trainer template (built
    once from a picklable :class:`TrainerSpec`) plus the full client
    shard table (shipped once at pool start-up, inherited for free
    under the ``fork`` start method).  Dispatch states and trained
    uploads cross the process boundary through
    :mod:`multiprocessing.shared_memory` ``(K, P)`` buffers: the server
    packs each unique dispatched state into a shared dispatch row, and
    the worker packs its trained state **directly into its upload row**
    via :meth:`repro.utils.layout.StateLayout.flatten_into` — the ``P``
    floats per client are written exactly once, never pickled through
    the result queue.  Only scalars (sample counts, loss, the client's
    advanced RNG state) ride back through the future.
``distributed``
    :class:`~repro.distributed.execution.DistributedExecution` (lazy —
    lives in :mod:`repro.distributed`, imported on first selection) —
    each leg runs on the socket-RPC shard host owning its upload row,
    so the trained state lands in its shard without transiting the
    coordinator.  Requires the pool on ``distributed`` storage.

Streaming runs
--------------
Every backend also exposes :meth:`ExecutionBackend.run_streaming`, an
as-completed generator yielding ``(plan_index, result)`` the moment
each leg lands: ``serial`` yields per leg in plan order (the reference
schedule), ``thread``/``process`` yield in completion order while
slower legs are still training.  The server's streaming collect phase
(``FLConfig.streaming``, on by default) consumes it to pack uploads
and feed FedCross's incremental Gram tracker *during* the round —
fully consuming the stream leaves bit-identical uploads, results and
RNG state versus :meth:`ExecutionBackend.run`.  Third-party backends
that only implement ``run`` inherit a gathered fallback.

Dispatch dedup for round-shared payloads
----------------------------------------
Hook specs may declare :attr:`~repro.fl.hooks.HookSpec.shared_fields`
— state mappings identical across a round's plans (SCAFFOLD's
``c_global``, FedGen's generator snapshot).  The ``process`` backend
packs each unique payload into a shared-memory row once per round
(:class:`_PayloadPacker`) and ships a tiny :class:`SharedStateRef` per
task instead; workers rebuild the mapping once per round from a
per-worker cache.  The arrays cross the process boundary zero times
after the segment mapping — previously they were pickled once per
client per round.

Determinism contract
--------------------
All backends produce **bit-identical** training histories and upload
buffers for the same config/seed: each client's batch shuffling draws
from its own generator (round-tripped through workers by state), hook
specs own their RNG streams, float32 states survive the shared-memory
round trip exactly, and results are returned in plan order regardless
of completion order.  Two carve-outs: models whose *layers* own RNG
streams shared across clients via the serial trainer template (e.g.
``nn.Dropout``'s mask stream) consume that stream in client order under
``serial`` — such models are only reproducible on the serial backend —
and *raw-callable* hooks that close over shared mutable state (a
server-side RNG, an accumulator) are invoked in completion order by
``thread``, so only stateless raw hooks keep the guarantee there; make
shared-state hooks a :class:`~repro.fl.hooks.HookSpec` with per-client
streams (as FedGen's distillation spec does) or run them on ``serial``.

Hooks must be :class:`~repro.fl.hooks.HookSpec` instances (not raw
closures) to cross the process boundary; ``serial`` and ``thread``
accept both (``process`` rejects raw callables loudly).

Backends register on :data:`EXECUTION_BACKENDS` via
:func:`register_execution`; selection is wired through
``FLConfig.execution`` / ``FLConfig.workers`` and the CLI flags
``--execution`` / ``--workers``.
"""

from __future__ import annotations

import atexit
import copy
import functools
import os
import time
import weakref
from concurrent.futures import (
    FIRST_COMPLETED,
    Future,
    ProcessPoolExecutor,
    ThreadPoolExecutor,
    as_completed,
    wait,
)
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Iterator, Mapping, Sequence

import numpy as np

from repro.faults.policy import LegFailure
from repro.fl.hooks import HookSpec, resolve_hook
from repro.fl.trainer import LocalResult, LocalTrainer
from repro.utils.layout import StateLayout
from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.core.pool import PoolBuffer
    from repro.fl.client import Client
    from repro.fl.server import DispatchPlan
    from repro.nn.module import Module
    from repro.robust.attacks import AttackSpec

__all__ = [
    "TrainerSpec",
    "SharedStateRef",
    "LegGroup",
    "ExecutionBackend",
    "SerialExecution",
    "ThreadExecution",
    "ProcessExecution",
    "ClientExecutor",
    "EXECUTION_BACKENDS",
    "register_execution",
    "resolve_execution",
    "available_executions",
]


EXECUTION_BACKENDS = Registry("execution backend", error_type=KeyError)


def register_execution(name: str):
    """Class decorator registering an :class:`ExecutionBackend`."""
    return EXECUTION_BACKENDS.register(name)


def resolve_execution(name: str) -> type["ExecutionBackend"]:
    """Backend class registered under ``name`` (case-insensitive)."""
    return EXECUTION_BACKENDS.resolve(name)


def available_executions() -> list[str]:
    return EXECUTION_BACKENDS.available()


# -- trainer template -------------------------------------------------------
@dataclass
class TrainerSpec:
    """Picklable recipe for a worker's private model/trainer template.

    ``model_factory`` is any zero-argument picklable callable returning
    a fresh :class:`~repro.nn.module.Module` (the simulation passes a
    :func:`functools.partial` over the model registry); the remaining
    fields mirror :class:`~repro.fl.trainer.LocalTrainer`'s settings.

    ``array_backend`` pins the array backend (see
    :mod:`repro.tensor.backend`) the template is built — and every leg
    trained — on.  Because the spec travels to process workers and
    :meth:`build` runs inside them, this is how a run's backend choice
    reaches worker processes that never saw the server's
    ``set_array_backend`` call.  ``None`` keeps each process's active
    backend.
    """

    model_factory: Callable[[], "Module"]
    local_epochs: int = 5
    batch_size: int = 50
    lr: float = 0.01
    momentum: float = 0.5
    weight_decay: float = 0.0
    array_backend: str | None = None

    def build(self) -> LocalTrainer:
        """Materialise a private trainer around a fresh model."""
        if self.array_backend is not None:
            from repro.tensor.backend import set_array_backend

            set_array_backend(self.array_backend)
        return LocalTrainer(
            self.model_factory(),
            local_epochs=self.local_epochs,
            batch_size=self.batch_size,
            lr=self.lr,
            momentum=self.momentum,
            weight_decay=self.weight_decay,
        )

    @classmethod
    def from_trainer(
        cls,
        trainer: LocalTrainer,
        model_factory: "Callable[[], Module] | None" = None,
        array_backend: str | None = None,
    ) -> "TrainerSpec":
        """Spec mirroring ``trainer``; falls back to deep-copying its
        model template when no explicit factory is supplied."""
        factory = (
            model_factory
            if model_factory is not None
            else functools.partial(copy.deepcopy, trainer.model)
        )
        return cls(
            model_factory=factory,
            local_epochs=trainer.local_epochs,
            batch_size=trainer.batch_size,
            lr=trainer.lr,
            momentum=trainer.momentum,
            weight_decay=trainer.weight_decay,
            array_backend=array_backend,
        )


_HYPER_FIELDS = ("local_epochs", "batch_size", "lr", "momentum", "weight_decay")


def _trainer_hypers(trainer: LocalTrainer) -> dict:
    """The live trainer's per-leg settings, captured per ``run`` call.

    Parallel backends apply these to their private templates before
    every leg, so mid-run mutations of the server's trainer (e.g. the
    experiments' per-round LR decay, ``sim.trainer.lr = ...``) are
    honoured exactly as the serial backend honours them.
    """
    return {field: getattr(trainer, field) for field in _HYPER_FIELDS}


def _apply_hypers(trainer: LocalTrainer, hypers: dict) -> None:
    for field, value in hypers.items():
        setattr(trainer, field, value)


def _default_workers(workers: int | None) -> int:
    if workers is not None:
        if workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        return int(workers)
    return os.cpu_count() or 1


def _check_parallel_cohort(active: "Sequence[Client]", rows: Sequence[int]) -> None:
    """Parallel preconditions: distinct rows *and* distinct clients.

    Duplicate rows would race on one buffer slice; a duplicate client
    would train both legs from the same RNG snapshot (serial advances
    the stream between legs), silently breaking the bit-identical
    contract — so both are errors rather than divergences.
    """
    if len(set(rows)) != len(rows):
        raise ValueError(
            "parallel execution backends require unique upload-buffer rows "
            f"per plan, got {list(rows)}"
        )
    ids = [client.client_id for client in active]
    if len(set(ids)) != len(ids):
        raise ValueError(
            "parallel execution backends require each client at most once "
            f"per cohort, got client ids {ids}"
        )


def _gather(futures):
    """Collect future results in submit order, failing *cleanly*.

    On any leg error the remaining futures are cancelled and in-flight
    ones awaited before re-raising, so no stray leg keeps writing into
    the server's reused upload buffer (or advancing client RNG streams)
    after control has returned to the caller.
    """
    try:
        return [future.result() for future in futures]
    except BaseException:
        for future in futures:
            future.cancel()
        wait(futures)
        raise


class LegGroup:
    """One cross-round submission batch of in-flight training legs.

    The async round scheduler's unit of work
    (:meth:`ExecutionBackend.submit_group`): ``futures[j]`` resolves to
    the backend's raw per-leg payload, ``finalize(j, raw)`` turns it
    into a landed :class:`~repro.fl.trainer.LocalResult` on the
    *caller's* thread (RNG restore, upload-row copy, attack
    application), and ``leg_done()`` — called once per leg after it is
    finalized, failed or drained — releases group-scoped resources
    (the process backend's shared-memory block pair) once every leg is
    accounted for.
    """

    __slots__ = ("futures", "_finalize", "_release", "_outstanding")

    def __init__(self, futures, finalize=None, release=None) -> None:
        self.futures = list(futures)
        self._finalize = finalize
        self._release = release
        self._outstanding = len(self.futures)

    def finalize(self, j: int, raw):
        return raw if self._finalize is None else self._finalize(j, raw)

    def leg_done(self) -> None:
        self._outstanding -= 1
        if self._outstanding <= 0 and self._release is not None:
            release, self._release = self._release, None
            release()


# -- backend protocol -------------------------------------------------------
class ExecutionBackend:
    """Runs one round's local-training legs and packs the uploads.

    The contract: train ``active[i]`` from ``plans[i]``, pack the
    trained state into ``uploads`` row ``rows[i]``, advance each
    client's RNG exactly as serial training would, and return the
    :class:`~repro.fl.trainer.LocalResult` list in plan order.

    :meth:`run_streaming` is the as-completed variant: it yields
    ``(plan_index, result)`` pairs the moment each leg lands, so the
    server can pack uploads and run incremental similarity work while
    slower legs are still training.  Consuming the whole stream leaves
    the exact same uploads/results/RNG state as :meth:`run` — the
    difference is purely *when* the caller sees each leg.  The default
    implementation delegates to :meth:`run` (no overlap), so
    third-party backends that only implement ``run`` keep working.
    """

    name = "abstract"

    #: Optional :class:`~repro.fl.comm.CommunicationLedger` attached by
    #: the server (via ``ClientExecutor(ledger=...)``).  Backends that
    #: *measure* real transfers (the ``distributed`` backend counts the
    #: parameters actually crossing its sockets) record into it and
    #: flag it measured, which makes the server skip its analytic
    #: per-round charge; in-process backends ignore it (nothing moves).
    ledger = None

    #: Backends supporting cross-round in-flight legs (the async round
    #: scheduler's :meth:`submit_group` seam) set this True.
    supports_async = False

    #: True when the backend itself *measures* real transfers into the
    #: ledger (the ``distributed`` backend records per-socket traffic at
    #: submit/land time).  The async driver never analytically charges a
    #: measuring backend — the sync path's ``ledger.measured`` flag is
    #: reset at every round boundary and so cannot be trusted while
    #: rounds overlap.
    measures_comm = False

    def __init__(
        self,
        spec: TrainerSpec | None = None,
        clients: "Sequence[Client]" = (),
        workers: int | None = None,
    ) -> None:
        self.spec = spec
        self.clients = list(clients)
        self.workers = workers

    def run(
        self,
        trainer: LocalTrainer,
        active: "list[Client]",
        plans: "list[DispatchPlan]",
        rows: Sequence[int],
        uploads: "PoolBuffer",
    ) -> list[LocalResult]:
        raise NotImplementedError

    def run_streaming(
        self,
        trainer: LocalTrainer,
        active: "list[Client]",
        plans: "list[DispatchPlan]",
        rows: Sequence[int],
        uploads: "PoolBuffer",
    ) -> Iterator[tuple[int, LocalResult]]:
        """Yield ``(plan_index, result)`` as legs complete.

        Fallback: run the gathered schedule, then yield in plan order.
        Built-in backends override with genuinely incremental variants.
        """
        results = self.run(trainer, active, plans, rows, uploads)
        yield from enumerate(results)

    def run_streaming_captured(
        self,
        trainer: LocalTrainer,
        active: "list[Client]",
        plans: "list[DispatchPlan]",
        rows: Sequence[int],
        uploads: "PoolBuffer",
        timeout: float | None = None,
        attacks: "Mapping[int, AttackSpec] | None" = None,
    ) -> "Iterator[tuple[int, LocalResult | LegFailure]]":
        """Fault-capturing stream: yield a result *or* a ``LegFailure``.

        The resilience engine's seam (:mod:`repro.faults.engine`): a leg
        error is reported as a structured
        :class:`~repro.faults.policy.LegFailure` instead of raising, so
        the remaining legs keep running and the policy layer decides
        what to do — cancel-on-error becomes cancel-on-policy.
        ``timeout`` is the wall-clock deadline for the whole submission
        (parallel backends only); at the deadline unstarted legs are
        cancelled and in-flight ones **drained and discarded** — timed-
        out work is never written after control returns, so a retry or
        carry can safely overwrite the row.

        ``attacks`` maps plan indices to Byzantine
        :class:`~repro.robust.attacks.AttackSpec`s.  An attacked leg
        trains honestly, then its *upload* (the buffer row and the
        yielded result's state) is replaced with the poisoned row right
        before the leg is yielded — the upload boundary — so the honest
        trained state is never perturbed and every per-upload consumer
        (Gram tracking, screening, aggregation) sees the attack.

        Fallback for third-party ``run``-only backends: consume the
        plain stream and convert a raised error into failures for every
        leg not yet seen (the backend already cancelled/drained its
        own in-flight work on the way out).
        """
        n = min(len(active), len(plans))
        seen: set[int] = set()
        try:
            for i, result in self.run_streaming(trainer, active, plans, rows, uploads):
                seen.add(i)
                if attacks and i in attacks:
                    result = _attacked_result(
                        attacks[i], plans[i], rows[i], uploads, result
                    )
                yield i, result
        except (KeyboardInterrupt, SystemExit, GeneratorExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - converted to failures
            for i in range(n):
                if i not in seen:
                    yield i, LegFailure(
                        index=i,
                        client_id=active[i].client_id,
                        row=int(rows[i]),
                        kind="error",
                        message=f"{type(exc).__name__}: {exc}",
                    )

    def reserve(self, width: int) -> None:
        """Hint: up to ``width`` legs may be in flight concurrently.

        The async round scheduler calls this once before overlapping
        rounds so pooled backends can pre-size their worker pools
        instead of growing them mid-flight.  The base implementation is
        a no-op.
        """

    def submit_group(
        self,
        trainer: LocalTrainer,
        active: "list[Client]",
        plans: "list[DispatchPlan]",
        rows: Sequence[int],
        uploads: "PoolBuffer",
        attacks: "Mapping[int, AttackSpec] | None" = None,
    ) -> "LegGroup":
        """Submit legs without blocking; return a :class:`LegGroup`.

        The cross-round seam for ``round_mode='async'``: unlike the
        ``run*`` schedules, the caller owns the wait loop and may have
        several groups (from different rounds) in flight at once.  The
        group's ``finalize(j, raw)`` converts a future's raw payload to
        a :class:`LocalResult` (applying upload attacks at the landing
        boundary) and ``leg_done()`` must be called once per leg so the
        backend can recycle per-group resources.
        """
        raise NotImplementedError(
            f"execution backend {self.name!r} does not support cross-round "
            "leg submission (round_mode='async' with max_staleness > 0)"
        )

    def close(self) -> None:
        """Release pools/buffers; the backend lazily re-creates them on
        the next :meth:`run`, so close is always safe."""


def _attacked_result(spec, plan, row, uploads, result: LocalResult) -> LocalResult:
    """Poison leg ``row`` at the upload boundary; rebuilt result.

    The buffer row is rewritten in place (so streaming consumers — the
    incremental Gram, screening, aggregation — all see the poisoned
    upload) and the yielded result's state is re-read from the buffer,
    never from the honest trained state.  Coordinator-side twin of the
    distributed backend's host-side application: both flatten the
    dispatched state in the buffer dtype and transform in float64, so
    the poisoned bytes are bit-identical across backends.
    """
    from repro.robust.attacks import apply_upload_attack

    apply_upload_attack(spec, uploads, int(row), plan.state)
    return LocalResult(
        state=uploads.as_state(int(row), copy=True),
        num_samples=result.num_samples,
        num_steps=result.num_steps,
        mean_loss=result.mean_loss,
    )


def _leg_failure(active, rows, i: int, kind: str, exc=None, drained=False) -> LegFailure:
    """Structured failure for leg ``i`` of the current submission."""
    if exc is None:
        message = "leg did not finish before the wall-clock deadline"
    else:
        message = f"{type(exc).__name__}: {exc}"
    return LegFailure(
        index=int(i),
        client_id=active[i].client_id,
        row=int(rows[i]),
        kind=kind,
        message=message,
        drained=drained,
    )


def _stream_captured(
    futures: Sequence, indexed: dict, active, rows, timeout: float | None
) -> Iterator:
    """As-completed stream that converts errors/deadline into failures.

    The captured twin of :func:`_stream_as_completed`.  Timeout
    semantics are drain-then-fail: at the deadline, unstarted futures
    are cancelled, in-flight ones are *awaited to completion* and their
    results discarded, and only then are the timeout failures yielded —
    so no worker ever writes into the reused upload buffer (or mutates
    a client RNG) after the caller has moved on, and a carry/redispatch
    overwrite of the row cannot race a zombie leg.
    """
    pending = set(futures)
    deadline = None if timeout is None else time.monotonic() + float(timeout)
    try:
        while pending:
            remaining = None
            if deadline is not None:
                remaining = max(0.0, deadline - time.monotonic())
            done, _ = wait(pending, timeout=remaining, return_when=FIRST_COMPLETED)
            for future in done:
                pending.discard(future)
                i = indexed[future]
                try:
                    result = future.result()
                except (KeyboardInterrupt, SystemExit, GeneratorExit):
                    raise
                except BaseException as exc:  # noqa: BLE001 - captured
                    yield i, _leg_failure(active, rows, i, "error", exc)
                else:
                    yield i, result
            if not done and deadline is not None and time.monotonic() >= deadline:
                late, pending = list(pending), set()
                for future in late:
                    future.cancel()
                wait(late)  # drain: in-flight legs finish, results discarded
                for future in late:
                    yield indexed[future], _leg_failure(
                        active, rows, indexed[future], "timeout", drained=True
                    )
                return
    finally:
        if pending:
            for future in pending:
                future.cancel()
            wait(list(pending))


def _stream_as_completed(futures: Sequence, indexed: dict) -> Iterator:
    """Yield ``(index, result)`` in completion order, failing cleanly.

    On a leg error — or the consumer abandoning the stream — the
    remaining futures are cancelled and in-flight ones awaited before
    control leaves, so no stray leg keeps writing into the server's
    reused upload buffer (the streaming twin of :func:`_gather`).
    """
    pending = set(futures)
    try:
        for future in as_completed(futures):
            pending.discard(future)
            yield indexed[future], future.result()
    finally:
        if pending:
            for future in pending:
                future.cancel()
            wait(list(pending))


@register_execution("serial")
class SerialExecution(ExecutionBackend):
    """The original sequential in-process loop (reference behaviour)."""

    def run(self, trainer, active, plans, rows, uploads):
        return [r for _, r in self.run_streaming(trainer, active, plans, rows, uploads)]

    def run_streaming(self, trainer, active, plans, rows, uploads):
        # Legs complete in plan order, so serial streaming preserves
        # the reference schedule exactly — each leg is yielded (and the
        # server's per-upload work runs) before the next one trains.
        for i, (client, plan) in enumerate(zip(active, plans)):
            result = client.train(
                trainer,
                plan.state,
                loss_hook=resolve_hook(plan.loss_hook, plan.state),
                grad_hook=resolve_hook(plan.grad_hook, plan.state),
                lr_override=plan.lr_override,
            )
            uploads.set_state(rows[i], result.state)
            yield i, result

    def run_streaming_captured(
        self, trainer, active, plans, rows, uploads, timeout=None, attacks=None
    ):
        # Serial legs run one at a time on the caller's thread, so a
        # wall-clock ``timeout`` is meaningless here (nothing is ever
        # in flight to abandon) and is deliberately ignored — the
        # deterministic straggler policy lives in the fault scenario.
        for i, (client, plan) in enumerate(zip(active, plans)):
            try:
                result = client.train(
                    trainer,
                    plan.state,
                    loss_hook=resolve_hook(plan.loss_hook, plan.state),
                    grad_hook=resolve_hook(plan.grad_hook, plan.state),
                    lr_override=plan.lr_override,
                )
            except (KeyboardInterrupt, SystemExit, GeneratorExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - captured
                yield i, _leg_failure(active, rows, i, "error", exc)
                continue
            uploads.set_state(rows[i], result.state)
            if attacks and i in attacks:
                result = _attacked_result(attacks[i], plan, rows[i], uploads, result)
            yield i, result

    supports_async = True

    def submit_group(
        self, trainer, active, plans, rows, uploads, attacks=None
    ) -> LegGroup:
        # Serial groups complete eagerly on the caller's thread, so the
        # async driver degenerates to strictly sequential rounds — the
        # property the bitwise-equivalence leg of the matrix relies on.
        futures: list[Future] = []
        for i, (client, plan) in enumerate(zip(active, plans)):
            future: Future = Future()
            try:
                result = client.train(
                    trainer,
                    plan.state,
                    loss_hook=resolve_hook(plan.loss_hook, plan.state),
                    grad_hook=resolve_hook(plan.grad_hook, plan.state),
                    lr_override=plan.lr_override,
                )
            except (KeyboardInterrupt, SystemExit, GeneratorExit):
                raise
            except BaseException as exc:  # noqa: BLE001 - captured
                future.set_exception(exc)
            else:
                uploads.set_state(rows[i], result.state)
                if attacks and i in attacks:
                    result = _attacked_result(
                        attacks[i], plan, rows[i], uploads, result
                    )
                future.set_result(result)
            futures.append(future)
        return LegGroup(futures)


@register_execution("thread")
class ThreadExecution(ExecutionBackend):
    """Persistent thread pool; one private trainer template per worker."""

    def __init__(self, spec=None, clients=(), workers=None) -> None:
        super().__init__(spec, clients, workers)
        self._num_workers = _default_workers(workers)
        self._pool: ThreadPoolExecutor | None = None
        self._templates: list[LocalTrainer] = []
        self._free: list[LocalTrainer] = []

    def _ensure_pool(self) -> None:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self._num_workers, thread_name_prefix="repro-exec"
            )

    def _acquire_trainer(self) -> LocalTrainer:
        # Called from worker threads: pop/append are individually atomic
        # and the empty-pop race is handled by falling through to build
        # (the pool never runs more tasks than workers concurrently, so
        # at most `workers` templates are ever built).
        try:
            return self._free.pop()
        except IndexError:
            pass
        if self.spec is None:
            raise RuntimeError(
                "thread execution backend needs a TrainerSpec to build "
                "per-worker trainer templates"
            )
        trainer = self.spec.build()
        self._templates.append(trainer)
        return trainer

    def _leg(self, i: int, client, plan, rows, uploads, hypers) -> LocalResult:
        worker_trainer = self._acquire_trainer()
        try:
            _apply_hypers(worker_trainer, hypers)
            result = client.train(
                worker_trainer,
                plan.state,
                loss_hook=resolve_hook(plan.loss_hook, plan.state),
                grad_hook=resolve_hook(plan.grad_hook, plan.state),
                lr_override=plan.lr_override,
            )
            # Rows are unique, so concurrent writes touch disjoint
            # slices of the upload matrix.
            uploads.set_state(rows[i], result.state)
            return result
        finally:
            self._free.append(worker_trainer)

    def _submit(self, trainer, active, plans, rows, uploads):
        _check_parallel_cohort(active[: len(plans)], rows[: len(plans)])
        self._ensure_pool()
        hypers = _trainer_hypers(trainer)
        return [
            self._pool.submit(self._leg, i, client, plan, rows, uploads, hypers)
            for i, (client, plan) in enumerate(zip(active, plans))
        ]

    def run(self, trainer, active, plans, rows, uploads):
        return _gather(self._submit(trainer, active, plans, rows, uploads))

    def run_streaming(self, trainer, active, plans, rows, uploads):
        futures = self._submit(trainer, active, plans, rows, uploads)
        yield from _stream_as_completed(futures, {f: i for i, f in enumerate(futures)})

    def run_streaming_captured(
        self, trainer, active, plans, rows, uploads, timeout=None, attacks=None
    ):
        futures = self._submit(trainer, active, plans, rows, uploads)
        indexed = {f: i for i, f in enumerate(futures)}
        for i, leg in _stream_captured(futures, indexed, active, rows, timeout):
            if attacks and i in attacks and not isinstance(leg, LegFailure):
                # Applied on the consumer thread after the leg landed:
                # rows are unique, so the rewrite cannot race a worker.
                leg = _attacked_result(attacks[i], plans[i], rows[i], uploads, leg)
            yield i, leg

    supports_async = True

    def reserve(self, width: int) -> None:
        # Grow the pool so overlapping rounds never queue behind one
        # cohort's width (ThreadPoolExecutor cannot shrink, only grow).
        width = max(int(width), self._num_workers)
        if self._pool is not None and width > self._num_workers:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._num_workers = width
        self._ensure_pool()

    def submit_group(
        self, trainer, active, plans, rows, uploads, attacks=None
    ) -> LegGroup:
        _check_parallel_cohort(active[: len(plans)], rows[: len(plans)])
        self._ensure_pool()
        hypers = _trainer_hypers(trainer)
        futures = [
            self._pool.submit(self._leg, i, client, plan, rows, uploads, hypers)
            for i, (client, plan) in enumerate(zip(active, plans))
        ]
        attack_map = dict(attacks) if attacks else {}

        def finalize(j: int, raw: LocalResult) -> LocalResult:
            # Runs on the scheduler's thread after the leg landed: rows
            # are unique across in-flight groups, so no worker races it.
            if j in attack_map:
                return _attacked_result(
                    attack_map[j], plans[j], rows[j], uploads, raw
                )
            return raw

        return LegGroup(futures, finalize)

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._templates.clear()
        self._free.clear()


# -- process backend --------------------------------------------------------
def _release_shared_memory(shm) -> None:
    try:
        shm.close()
    except Exception:  # pragma: no cover - interpreter teardown
        pass
    try:
        shm.unlink()
    except Exception:  # pragma: no cover - already unlinked
        pass


# Every live _SharedBlock, so an interrupted run (KeyboardInterrupt in
# the middle of a round, an exception unwinding past the executor) still
# unlinks its /dev/shm segments at interpreter exit instead of leaking
# them until reboot.  Weak references: normal GC/close stays the primary
# release path and the sweep never extends a block's lifetime.
_LIVE_BLOCKS: "weakref.WeakSet[_SharedBlock]" = weakref.WeakSet()


def _cleanup_shared_blocks() -> None:
    for block in list(_LIVE_BLOCKS):
        block.close()


atexit.register(_cleanup_shared_blocks)


class _SharedBlock:
    """Owner of one shared-memory-backed ``(K, P)`` ndarray.

    ``ref`` is the picklable handle (name, shape, dtype) workers use to
    attach.  The segment is unlinked when the block is closed or
    garbage-collected, so reallocation on pool-size changes never leaks
    ``/dev/shm`` segments.
    """

    def __init__(self, shape: tuple[int, int], dtype) -> None:
        from multiprocessing import shared_memory  # local: optional at import

        dtype = np.dtype(dtype)
        nbytes = max(1, int(np.prod(shape)) * dtype.itemsize)
        self.shm = shared_memory.SharedMemory(create=True, size=nbytes)
        self.array = np.ndarray(tuple(shape), dtype=dtype, buffer=self.shm.buf)
        self.ref = (self.shm.name, tuple(int(s) for s in shape), dtype.str)
        self._finalizer = weakref.finalize(self, _release_shared_memory, self.shm)
        _LIVE_BLOCKS.add(self)

    def close(self) -> None:
        self.array = None
        self._finalizer()


@dataclass(frozen=True)
class SharedStateRef:
    """Picklable pointer to a round-shared state dict in shared memory.

    The dispatch-dedup transport for :attr:`HookSpec.shared_fields`
    payloads (SCAFFOLD's ``c_global``, FedGen's generator state): the
    server packs each unique payload into one float64 row of a payload
    segment and ships this tiny ref per task instead of re-pickling
    the arrays per client.  Workers rebuild the mapping from
    ``signature`` via :meth:`repro.utils.layout.StateLayout
    .from_signature` and cache it per ``(segment, row)`` until
    ``version`` moves on — one unflatten per worker per round.
    """

    ref: tuple  # (shm name, shape, dtype str) — _SharedBlock.ref
    row: int
    version: int
    signature: tuple


class _PayloadPacker:
    """Server-side owner of the round-shared payload segments.

    One :class:`_SharedBlock` per payload layout signature, reused
    across rounds and regrown when a round needs more rows; rows are
    float64 so narrower float payloads round-trip exactly (SCAFFOLD's
    variates *are* float64 and must not be narrowed — the same guard
    rails as the dispatch rows apply).
    """

    def __init__(self) -> None:
        self._blocks: dict[tuple, _SharedBlock] = {}
        self._version = 0

    def pack_round(self, plans) -> list[tuple]:
        """Strip shared payloads from every plan's hooks for transit.

        Returns one ``(loss_hook, grad_hook)`` pair per plan where each
        spec carrying shared payloads is replaced by a shallow copy
        holding :class:`SharedStateRef` placeholders (originals are
        never mutated — the server reuses them across rounds).
        """
        self._version += 1
        unique: dict[int, tuple] = {}  # id(payload) -> (payload, layout)
        counts: dict[tuple, int] = {}
        for plan in plans:
            for hook in (plan.loss_hook, plan.grad_hook):
                for _, value in self._shared_items(hook):
                    if id(value) not in unique:
                        layout = StateLayout.from_state(value)
                        unique[id(value)] = (value, layout)
                        sig = layout.signature
                        counts[sig] = counts.get(sig, 0) + 1
        from repro.core.pool import _check_integer_roundtrip

        refs: dict[int, SharedStateRef] = {}
        next_row: dict[tuple, int] = {}
        for sig, count in counts.items():
            self._ensure_block(sig, count)
        for key, (value, layout) in unique.items():
            sig = layout.signature
            block = self._blocks[sig]
            row = next_row.get(sig, 0)
            next_row[sig] = row + 1
            _check_integer_roundtrip(layout, value, block.array.dtype)
            _check_float_roundtrip(layout, value, block.array.dtype)
            layout.flatten_into(value, block.array[row])
            refs[key] = SharedStateRef(
                ref=block.ref, row=row, version=self._version, signature=sig
            )
        return [
            (
                self._strip(plan.loss_hook, refs),
                self._strip(plan.grad_hook, refs),
            )
            for plan in plans
        ]

    @staticmethod
    def _shared_items(hook):
        if not isinstance(hook, HookSpec):
            return
        for name in getattr(hook, "shared_fields", ()):
            value = getattr(hook, name, None)
            if isinstance(value, Mapping) and len(value):
                yield name, value

    def _strip(self, hook, refs: dict):
        clone = None
        for name, value in self._shared_items(hook):
            ref = refs.get(id(value))
            if ref is None:  # pragma: no cover - pack_round covers all plans
                continue
            if clone is None:
                clone = copy.copy(hook)
            setattr(clone, name, ref)
        return clone if clone is not None else hook

    def _ensure_block(self, sig: tuple, rows: int) -> None:
        layout = StateLayout.from_signature(sig)
        block = self._blocks.get(sig)
        if (
            block is not None
            and block.array is not None
            and block.array.shape[0] >= rows
        ):
            return
        if block is not None:
            block.close()
        self._blocks[sig] = _SharedBlock((rows, layout.total_size), np.float64)

    def live_names(self) -> set[str]:
        return {
            block.shm.name
            for block in self._blocks.values()
            if block.array is not None
        }

    def close(self) -> None:
        for block in self._blocks.values():
            block.close()
        self._blocks.clear()


# Worker-process state: trainer template, layout, client shards,
# attached shared-memory segments, and reconstructed round-shared
# payloads — built once per worker, reused for every (client, round)
# task.
_WORKER: dict = {}


def _worker_init(spec: TrainerSpec, datasets: dict) -> None:
    trainer = spec.build()
    _WORKER["trainer"] = trainer
    _WORKER["datasets"] = datasets
    _WORKER["shm"] = {}
    _WORKER["payloads"] = {}
    _WORKER["layout"] = StateLayout.from_state(trainer.model.state_dict())


def _worker_attach(ref: tuple) -> np.ndarray:
    """Attach (and cache) a shared block by its picklable ref."""
    name, shape, dtype_str = ref
    cache = _WORKER["shm"]
    entry = cache.get(name)
    if entry is None:
        from multiprocessing import shared_memory

        # Attaching registers with the resource tracker (shared with the
        # server process under fork/spawn); that is idempotent, and the
        # server's unlink performs the single matching unregister — the
        # worker must NOT unregister, or the later unlink double-frees
        # the tracker entry.
        shm = shared_memory.SharedMemory(name=name)
        array = np.ndarray(tuple(shape), dtype=np.dtype(dtype_str), buffer=shm.buf)
        cache[name] = (shm, array)
        entry = cache[name]
    return entry[1]


def _worker_prune_shm(live_names: set[str]) -> None:
    """Drop mappings of segments the server has since reallocated."""
    cache = _WORKER["shm"]
    for name in [n for n in cache if n not in live_names]:
        shm, _ = cache.pop(name)
        try:
            shm.close()
        except Exception:  # pragma: no cover
            pass
    payloads = _WORKER.setdefault("payloads", {})
    for key in [k for k in payloads if k[0] not in live_names]:
        del payloads[key]


def _worker_payload(ref: SharedStateRef) -> Mapping[str, np.ndarray]:
    """Reconstruct (and cache) one round-shared payload from its ref.

    Cached per ``(segment, row)`` with the packer's version as the
    freshness token, so each worker unflattens a given payload once
    per round regardless of how many of its tasks reference it.
    """
    payloads = _WORKER.setdefault("payloads", {})
    key = (ref.ref[0], ref.row)
    hit = payloads.get(key)
    if hit is not None and hit[0] == ref.version:
        return hit[1]
    layout = StateLayout.from_signature(ref.signature)
    block = _worker_attach(ref.ref)
    value = layout.unflatten(block[ref.row], copy=True)
    payloads[key] = (ref.version, value)
    return value


def _worker_restore_shared(hook):
    """Swap :class:`SharedStateRef` placeholders back for real mappings.

    The spec instance arrived pickled and is private to this task, so
    in-place restoration is safe.
    """
    if not isinstance(hook, HookSpec):
        return hook
    for name in getattr(hook, "shared_fields", ()):
        value = getattr(hook, name, None)
        if isinstance(value, SharedStateRef):
            setattr(hook, name, _worker_payload(value))
    return hook


def _process_leg(task: dict):
    """One client's local-training leg, run inside a pool worker.

    Reads the dispatched state out of the shared dispatch row, trains on
    the worker's cached shard with the client's RNG stream, packs the
    trained state straight into the shared upload row, and returns only
    scalars plus the advanced RNG state.
    """
    from repro.core.pool import _check_integer_roundtrip

    trainer: LocalTrainer = _WORKER["trainer"]
    _apply_hypers(trainer, task["hypers"])
    layout = _WORKER["layout"]
    live = {task["dispatch_ref"][0], task["upload_ref"][0]}
    live.update(task["payload_names"])
    _worker_prune_shm(live)
    dispatch = _worker_attach(task["dispatch_ref"])
    upload = _worker_attach(task["upload_ref"])

    state = layout.unflatten(dispatch[task["dispatch_row"]], copy=True)
    rng = np.random.default_rng()
    rng.bit_generator.state = task["rng_state"]
    dataset = _WORKER["datasets"][task["client_id"]]

    result = trainer.train(
        state,
        dataset,
        rng,
        loss_hook=resolve_hook(_worker_restore_shared(task["loss_hook"]), state),
        grad_hook=resolve_hook(_worker_restore_shared(task["grad_hook"]), state),
        lr_override=task["lr_override"],
    )
    # Guard both directions of the shm transport: the trained state must
    # survive the buffer dtype exactly, or the server-side
    # ``result.state`` view would silently differ from serial's native
    # result (e.g. a float64 buffer field trained to float32-inexact
    # values).
    _check_integer_roundtrip(layout, result.state, upload.dtype)
    _check_float_roundtrip(layout, result.state, upload.dtype)
    layout.flatten_into(result.state, upload[task["upload_row"]])
    return (
        result.num_samples,
        result.num_steps,
        result.mean_loss,
        rng.bit_generator.state,
    )


def _require_spec_hook(hook, which: str) -> None:
    if hook is None or isinstance(hook, HookSpec):
        return
    raise TypeError(
        f"{which} is a raw callable, which cannot cross the process "
        "boundary; dispatch a picklable repro.fl.hooks.HookSpec instead "
        "(or use the 'serial'/'thread' execution backend)"
    )


def _check_float_roundtrip(layout, state, dtype) -> None:
    """Refuse to narrow float state through a thinner shm buffer.

    The serial backend hands the dispatched dict to the trainer as-is;
    the process backend ships it through the buffer-dtype shm row.  A
    float field *wider* than the buffer dtype whose values do not
    survive the round trip would make workers train from different
    weights than serial — a silent break of the bit-identical contract
    — so fail loudly instead (the all-float32 common case skips this
    entirely).
    """
    buffer_dtype = np.dtype(dtype)
    for spec in layout.fields:
        value = np.asarray(state[spec.key])
        if value.dtype.kind != "f" or value.dtype.itemsize <= buffer_dtype.itemsize:
            continue
        if value.size and not np.array_equal(
            value.astype(buffer_dtype).astype(value.dtype), value
        ):
            raise ValueError(
                f"float field {spec.key!r} ({value.dtype}) does not survive the "
                f"{buffer_dtype} shared-memory round trip; dispatch "
                f"{buffer_dtype}-exact states or use the 'serial'/'thread' "
                "execution backend"
            )


@register_execution("process")
class ProcessExecution(ExecutionBackend):
    """Persistent worker processes + shared-memory state transport."""

    def __init__(self, spec=None, clients=(), workers=None) -> None:
        super().__init__(spec, clients, workers)
        self._num_workers = _default_workers(workers)
        self._pool: ProcessPoolExecutor | None = None
        self._dispatch: _SharedBlock | None = None
        self._uploads_shm: _SharedBlock | None = None
        self._payloads = _PayloadPacker()
        # Free-list of (dispatch, upload) block pairs for cross-round
        # groups, keyed (n, p, dtype str): overlapping rounds must not
        # share the sync path's single block pair, or round t+1's pack
        # would overwrite rows round t's workers are still reading.
        self._group_blocks: dict[tuple, list] = {}

    def _ensure_pool(self) -> None:
        if self._pool is not None:
            return
        if self.spec is None:
            raise RuntimeError(
                "process execution backend needs a TrainerSpec to build "
                "worker-side trainer templates"
            )
        datasets = {c.client_id: c.dataset for c in self.clients}
        self._pool = ProcessPoolExecutor(
            max_workers=self._num_workers,
            initializer=_worker_init,
            initargs=(self.spec, datasets),
        )

    def _ensure_shm(self, k: int, p: int, dtype) -> None:
        shape = (k, p)
        for attr in ("_dispatch", "_uploads_shm"):
            block: _SharedBlock | None = getattr(self, attr)
            if block is None or block.array is None or block.array.shape != shape or block.array.dtype != np.dtype(dtype):
                if block is not None:
                    block.close()
                setattr(self, attr, _SharedBlock(shape, dtype))

    def _submit(self, trainer, active, plans, rows, uploads):
        """Validate, pack shared-memory blocks, submit one future per leg."""
        from repro.core.pool import _check_integer_roundtrip

        _check_parallel_cohort(active[: len(plans)], rows[: len(plans)])
        # Validate every plan *before* submitting anything: a bad hook
        # or state on plan n must not leave legs 0..n-1 training (and
        # writing shared rows) behind a raised error.
        for plan in plans:
            _require_spec_hook(plan.loss_hook, "DispatchPlan.loss_hook")
            _require_spec_hook(plan.grad_hook, "DispatchPlan.grad_hook")
        self._ensure_pool()
        layout = uploads.layout
        self._ensure_shm(len(uploads), layout.total_size, uploads.dtype)
        # Round-shared hook payloads (SCAFFOLD's c_global, FedGen's
        # generator state) are packed into payload segments once and
        # replaced by tiny refs — never pickled per client.
        hook_pairs = self._payloads.pack_round(plans)
        payload_names = sorted(self._payloads.live_names())

        # Pack each *unique* dispatched state once (FedAvg-family plans
        # all share one global-state dict; FedCross plans are distinct
        # pool rows), keyed by object identity.
        dispatch_rows: dict[int, int] = {}
        for plan in plans:
            key = id(plan.state)
            if key not in dispatch_rows:
                if set(plan.state) != set(layout.keys):
                    raise KeyError(
                        "dispatched state keys do not match the model layout; "
                        "the process backend can only ship model-shaped states"
                    )
                j = len(dispatch_rows)
                dispatch_rows[key] = j
                _check_integer_roundtrip(layout, plan.state, self._dispatch.array.dtype)
                _check_float_roundtrip(layout, plan.state, self._dispatch.array.dtype)
                layout.flatten_into(plan.state, self._dispatch.array[j])

        hypers = _trainer_hypers(trainer)
        futures = []
        for i, (client, plan) in enumerate(zip(active, plans)):
            loss_hook, grad_hook = hook_pairs[i]
            futures.append(
                self._pool.submit(
                    _process_leg,
                    {
                        "client_id": client.client_id,
                        "rng_state": client.rng.bit_generator.state,
                        "dispatch_row": dispatch_rows[id(plan.state)],
                        "upload_row": int(rows[i]),
                        "dispatch_ref": self._dispatch.ref,
                        "upload_ref": self._uploads_shm.ref,
                        "payload_names": payload_names,
                        "loss_hook": loss_hook,
                        "grad_hook": grad_hook,
                        "lr_override": plan.lr_override,
                        "hypers": hypers,
                    },
                )
            )
        return futures

    def run(self, trainer, active, plans, rows, uploads):
        n = min(len(active), len(plans))
        results: list[LocalResult | None] = [None] * n
        for i, result in self.run_streaming(trainer, active, plans, rows, uploads):
            results[i] = result
        return results

    def run_streaming(self, trainer, active, plans, rows, uploads):
        futures = self._submit(trainer, active, plans, rows, uploads)
        indexed = {f: i for i, f in enumerate(futures)}
        for i, leg in _stream_as_completed(futures, indexed):
            num_samples, num_steps, mean_loss, rng_state = leg
            active[i].rng.bit_generator.state = rng_state
            row = int(rows[i])
            # Copy this leg's freshly written row from the shared
            # segment into the server's buffer the moment it lands —
            # straight into the row's owning shard on sharded (or
            # memmap-backed) storage, while slower legs still train.
            uploads.set_row(row, self._uploads_shm.array[row])
            yield i, LocalResult(
                state=uploads.as_state(row, copy=True),
                num_samples=num_samples,
                num_steps=num_steps,
                mean_loss=mean_loss,
            )

    def run_streaming_captured(
        self, trainer, active, plans, rows, uploads, timeout=None, attacks=None
    ):
        futures = self._submit(trainer, active, plans, rows, uploads)
        indexed = {f: i for i, f in enumerate(futures)}
        for i, leg in _stream_captured(futures, indexed, active, rows, timeout):
            if isinstance(leg, LegFailure):
                yield i, leg
                continue
            num_samples, num_steps, mean_loss, rng_state = leg
            active[i].rng.bit_generator.state = rng_state
            row = int(rows[i])
            uploads.set_row(row, self._uploads_shm.array[row])
            result = LocalResult(
                state=uploads.as_state(row, copy=True),
                num_samples=num_samples,
                num_steps=num_steps,
                mean_loss=mean_loss,
            )
            if attacks and i in attacks:
                result = _attacked_result(attacks[i], plans[i], row, uploads, result)
            yield i, result

    supports_async = True

    def reserve(self, width: int) -> None:
        width = max(int(width), self._num_workers)
        if self._pool is not None and width > self._num_workers:
            self._pool.shutdown(wait=True)
            self._pool = None
        self._num_workers = width

    def _acquire_blocks(self, n: int, p: int, dtype) -> "tuple[_SharedBlock, _SharedBlock]":
        key = (int(n), int(p), np.dtype(dtype).str)
        free = self._group_blocks.setdefault(key, [])
        while free:
            pair = free.pop()
            if pair[0].array is not None and pair[1].array is not None:
                return pair
        return (_SharedBlock((n, p), dtype), _SharedBlock((n, p), dtype))

    def submit_group(
        self, trainer, active, plans, rows, uploads, attacks=None
    ) -> LegGroup:
        """Cross-round submission on private per-group shm block pairs.

        Differences from the sync :meth:`_submit` transport: dispatch
        *and* upload rows are indexed by plan position ``j`` (not pool
        row — two in-flight groups may reuse a pool row across a carry),
        and round-shared hook payloads ride pickled inside each task
        instead of through :class:`_PayloadPacker` (whose regrow-on-pack
        would unlink segments a still-running group's workers map).
        """
        from repro.core.pool import _check_integer_roundtrip

        _check_parallel_cohort(active[: len(plans)], rows[: len(plans)])
        for plan in plans:
            _require_spec_hook(plan.loss_hook, "DispatchPlan.loss_hook")
            _require_spec_hook(plan.grad_hook, "DispatchPlan.grad_hook")
        self._ensure_pool()
        layout = uploads.layout
        n = len(plans)
        dispatch, upload = self._acquire_blocks(
            max(1, n), layout.total_size, uploads.dtype
        )
        hypers = _trainer_hypers(trainer)
        futures = []
        for j, (client, plan) in enumerate(zip(active, plans)):
            _check_integer_roundtrip(layout, plan.state, dispatch.array.dtype)
            _check_float_roundtrip(layout, plan.state, dispatch.array.dtype)
            layout.flatten_into(plan.state, dispatch.array[j])
            futures.append(
                self._pool.submit(
                    _process_leg,
                    {
                        "client_id": client.client_id,
                        "rng_state": client.rng.bit_generator.state,
                        "dispatch_row": j,
                        "upload_row": j,
                        "dispatch_ref": dispatch.ref,
                        "upload_ref": upload.ref,
                        "payload_names": (),
                        "loss_hook": plan.loss_hook,
                        "grad_hook": plan.grad_hook,
                        "lr_override": plan.lr_override,
                        "hypers": hypers,
                    },
                )
            )
        attack_map = dict(attacks) if attacks else {}

        def finalize(j: int, raw) -> LocalResult:
            num_samples, num_steps, mean_loss, rng_state = raw
            active[j].rng.bit_generator.state = rng_state
            row = int(rows[j])
            uploads.set_row(row, upload.array[j])
            result = LocalResult(
                state=uploads.as_state(row, copy=True),
                num_samples=num_samples,
                num_steps=num_steps,
                mean_loss=mean_loss,
            )
            if j in attack_map:
                result = _attacked_result(attack_map[j], plans[j], row, uploads, result)
            return result

        def release() -> None:
            if dispatch.array is not None and upload.array is not None:
                key = (
                    int(dispatch.array.shape[0]),
                    int(dispatch.array.shape[1]),
                    dispatch.array.dtype.str,
                )
                self._group_blocks.setdefault(key, []).append((dispatch, upload))

        return LegGroup(futures, finalize, release)

    def close(self) -> None:
        # Release the shared segments even when the pool shutdown is
        # interrupted (Ctrl-C while workers drain): pool teardown runs
        # first, but block/payload unlinking sits in the finally so a
        # KeyboardInterrupt unwinding through shutdown() cannot leak
        # /dev/shm segments until reboot.
        pool, self._pool = self._pool, None
        try:
            if pool is not None:
                pool.shutdown(wait=True)
        finally:
            for attr in ("_dispatch", "_uploads_shm"):
                block = getattr(self, attr)
                if block is not None:
                    block.close()
                    setattr(self, attr, None)
            for pairs in self._group_blocks.values():
                for pair in pairs:
                    for block in pair:
                        block.close()
            self._group_blocks.clear()
            self._payloads.close()


# -- facade -----------------------------------------------------------------
class ClientExecutor:
    """The server's handle on its execution backend.

    Resolves ``backend`` against the registry, builds the backend with a
    :class:`TrainerSpec` derived from the live trainer (plus an optional
    explicit ``model_factory`` — required to be picklable for
    ``process``), and forwards ``run``/``close``.  Servers construct one
    from ``FLConfig.execution`` / ``FLConfig.workers`` by default;
    callers may inject a custom instance through the server's
    ``executor=`` keyword.
    """

    def __init__(
        self,
        backend: str = "serial",
        *,
        trainer: LocalTrainer | None = None,
        clients: "Sequence[Client]" = (),
        model_factory: "Callable[[], Module] | None" = None,
        workers: int | None = None,
        array_backend: str | None = None,
        ledger=None,
    ) -> None:
        spec = (
            TrainerSpec.from_trainer(trainer, model_factory, array_backend=array_backend)
            if trainer is not None
            else None
        )
        self._backend = resolve_execution(backend)(
            spec=spec, clients=clients, workers=workers
        )
        if ledger is not None:
            self._backend.ledger = ledger
        self._finalizer = weakref.finalize(self, self._backend.close)

    @property
    def name(self) -> str:
        """Registered name of the active backend."""
        return self._backend.name

    @property
    def backend(self) -> ExecutionBackend:
        return self._backend

    def run(
        self,
        trainer: LocalTrainer,
        active: "list[Client]",
        plans: "list[DispatchPlan]",
        rows: Sequence[int],
        uploads: "PoolBuffer",
    ) -> list[LocalResult]:
        """Train the cohort and pack uploads; results in plan order."""
        return self._backend.run(trainer, active, plans, rows, uploads)

    def run_streaming(
        self,
        trainer: LocalTrainer,
        active: "list[Client]",
        plans: "list[DispatchPlan]",
        rows: Sequence[int],
        uploads: "PoolBuffer",
    ) -> Iterator[tuple[int, LocalResult]]:
        """Train the cohort, yielding ``(plan_index, result)`` pairs as
        legs land — the overlap seam the streaming collect phase
        consumes.  Fully consuming the stream is equivalent to
        :meth:`run` (same uploads, results and RNG advancement)."""
        return self._backend.run_streaming(trainer, active, plans, rows, uploads)

    def run_streaming_captured(
        self,
        trainer: LocalTrainer,
        active: "list[Client]",
        plans: "list[DispatchPlan]",
        rows: Sequence[int],
        uploads: "PoolBuffer",
        timeout: float | None = None,
        attacks: "Mapping[int, AttackSpec] | None" = None,
    ) -> "Iterator[tuple[int, LocalResult | LegFailure]]":
        """Fault-capturing twin of :meth:`run_streaming`: a leg that
        raises (or misses the wall-clock ``timeout``) is yielded as a
        structured :class:`~repro.faults.policy.LegFailure` instead of
        aborting the stream — the seam the resilience engine drives.
        ``attacks`` (plan index → Byzantine spec) poisons those legs'
        uploads at the landing boundary; it is only forwarded when
        present, so third-party backends predating the keyword keep
        working in attack-free runs."""
        if attacks:
            return self._backend.run_streaming_captured(
                trainer, active, plans, rows, uploads,
                timeout=timeout, attacks=attacks,
            )
        return self._backend.run_streaming_captured(
            trainer, active, plans, rows, uploads, timeout=timeout
        )

    def close(self) -> None:
        """Shut down worker pools and release shared buffers (idempotent;
        the backend transparently re-creates them on the next run)."""
        self._backend.close()


# The socket-RPC backend lives in its own package and is imported only
# when actually selected (see Registry.lazy) — it still shows up in
# available_executions() and CLI validation.
EXECUTION_BACKENDS.lazy("distributed", "repro.distributed.execution")
