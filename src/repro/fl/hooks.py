"""Picklable hook specifications for local-training customisation.

Method-specific local-training behaviour (FedProx's proximal term,
SCAFFOLD's control-variate correction, FedGen's distillation term) used
to be injected as *closures* built in each server's ``dispatch``.
Closures capture the live server (``self.mu``, ``self._c_global``, the
generator...) and therefore cannot cross a process boundary — the one
thing the ``process`` execution backend needs them to do.

A :class:`HookSpec` is the closure's picklable twin: a small value
object carrying exactly the data the hook needs, resolved into a plain
callable *where the training runs* via :meth:`HookSpec.build`.  The
``serial`` and ``thread`` backends resolve specs in-process (so the
arithmetic is identical to the old closures); the ``process`` backend
pickles the spec to a persistent worker and resolves it there.

A :class:`~repro.fl.server.DispatchPlan`'s ``loss_hook`` / ``grad_hook``
fields accept either a raw callable (backwards compatible, but
``serial``/``thread`` only) or a spec.  :func:`resolve_hook` is the
single resolution point used by every execution backend.

Shipped specs
-------------
:class:`ProximalSpec`
    FedProx — ``(mu/2)·‖w − w_anchor‖²`` added to the local loss.  With
    ``anchor=None`` the anchor defaults to the dispatched state itself,
    which is what FedProx wants and avoids shipping the same ``P``
    floats twice.
:class:`ControlVariateSpec`
    SCAFFOLD — per-step gradient correction ``g ← g + (c − c_i)``.
:class:`DistillationSpec`
    FedGen — ``λ·CE(model(G(z, y)), y)`` with a frozen generator.  Each
    spec owns an independent RNG stream (spawned per client at dispatch
    time), so the draws do not depend on the order clients train in —
    the property that makes FedGen safe to parallelise.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

import numpy as np

from repro.tensor import functional as F
from repro.tensor.autograd import no_grad
from repro.tensor.tensor import Tensor

__all__ = [
    "HookSpec",
    "ProximalSpec",
    "ControlVariateSpec",
    "DistillationSpec",
    "resolve_hook",
]


class HookSpec:
    """Base class for picklable local-training hook specifications.

    Subclasses implement :meth:`build`, returning the runnable hook
    (a ``LossHook`` or ``GradHook`` callable, matching the trainer's
    hook protocol).  Specs must be plain data — anything reachable from
    their fields is pickled to worker processes by the ``process``
    execution backend.

    ``shared_fields`` names fields holding a ``{name: ndarray}`` state
    mapping that is *shared across a round's plans* (SCAFFOLD's global
    control variate, FedGen's frozen generator state).  The ``process``
    backend ships each such payload through shared memory **once per
    round** instead of pickling it once per client, swapping the field
    for a :class:`~repro.fl.execution.SharedStateRef` in transit and
    restoring it from a per-worker cache on the other side.  In-process
    backends ignore it (the mapping is already shared by reference).

    Specs need no array-backend awareness of their own: workers resolve
    them *after* :meth:`~repro.fl.execution.TrainerSpec.build` has
    activated the run's array backend, so any tensors a hook builds land
    on the active backend automatically.  Spec fields themselves carry
    host ``ndarray`` payloads (they must pickle and ride shared memory).
    """

    shared_fields: tuple[str, ...] = ()

    #: Fields whose state mappings ride server → client alongside the
    #: dispatched model (``comm_down_fields``) or are echoed client →
    #: server with the upload (``comm_up_fields``) — the per-leg
    #: communication surcharge of the method, in field names.  Measured
    #: accounting (the ``distributed`` execution backend) sums their
    #: sizes per leg; fields that are ``None`` or absent cost nothing.
    #: Purely declarative: in-process backends ignore both.
    comm_down_fields: tuple[str, ...] = ()
    comm_up_fields: tuple[str, ...] = ()

    def build(self, state: Mapping[str, np.ndarray]) -> Callable:
        """Resolve into a runnable hook.

        Parameters
        ----------
        state:
            The state dict dispatched to the client — available so specs
            can anchor to it without carrying a second copy.
        """
        raise NotImplementedError


def resolve_hook(
    hook: "Callable | HookSpec | None", state: Mapping[str, np.ndarray]
) -> Callable | None:
    """Turn a plan's hook field into a runnable callable (or ``None``).

    Raw callables pass through untouched — the pre-spec idiom, still
    supported for in-process execution backends.
    """
    if isinstance(hook, HookSpec):
        return hook.build(state)
    return hook


@dataclass
class ProximalSpec(HookSpec):
    """FedProx loss hook: ``(mu/2)·‖w − w_anchor‖²``.

    ``anchor=None`` (the default) anchors to the dispatched state — the
    FedProx formulation, without double-shipping the global model.
    """

    mu: float
    anchor: Mapping[str, np.ndarray] | None = None

    # An explicit anchor is extra dispatched state; the default
    # (anchor=None, anchoring to the dispatched model itself) costs
    # nothing — matching the paper's "Low" class for FedProx.
    comm_down_fields = ("anchor",)

    def build(self, state: Mapping[str, np.ndarray]) -> Callable:
        mu = float(self.mu)
        source = self.anchor if self.anchor is not None else state
        anchors = {name: Tensor(np.asarray(value)) for name, value in source.items()}

        def hook(model, logits, targets):
            if mu == 0.0:
                return None
            penalty = None
            for name, param in model.named_parameters():
                diff = param - anchors[name]
                term = (diff * diff).sum()
                penalty = term if penalty is None else penalty + term
            return penalty * (mu / 2.0)

        return hook


@dataclass
class ControlVariateSpec(HookSpec):
    """SCAFFOLD gradient hook: ``g ← g + (c − c_i)`` on every step.

    ``c_global`` is one server-side mapping shared by every plan in a
    round, so it is declared a shared field — the ``process`` backend
    ships it through shared memory once per round rather than pickling
    it per client (``c_local`` is genuinely per-client and still rides
    the task).
    """

    c_global: Mapping[str, np.ndarray]
    c_local: Mapping[str, np.ndarray]

    shared_fields = ("c_global",)
    # SCAFFOLD moves a model-sized control variate in each direction on
    # top of the model itself (``c_local`` already lives client-side in
    # the paper's protocol — only the global variate goes down, and an
    # equally sized variate delta comes back up), doubling both legs:
    # the paper's "High" communication class.
    comm_down_fields = ("c_global",)
    comm_up_fields = ("c_global",)

    def build(self, state: Mapping[str, np.ndarray]) -> Callable:
        c_global, c_local = self.c_global, self.c_local

        def hook(named_params: dict) -> None:
            for name, param in named_params.items():
                if param.grad is None:
                    continue
                param.grad = param.grad + (c_global[name] - c_local[name])

        return hook


@dataclass
class DistillationSpec(HookSpec):
    """FedGen loss hook: ``weight · CE(model(G(z, y)), y)``.

    Carries the frozen generator (architecture numbers + state dict),
    the label-sampling distribution, and a dedicated seed.  The hook's
    RNG stream is private to this spec, so draws are identical whether
    clients train sequentially or in parallel.
    """

    num_classes: int
    sample_shape: tuple[int, ...]
    z_dim: int
    hidden: int
    generator_state: dict[str, np.ndarray]
    label_probs: np.ndarray
    batch: int
    weight: float
    seed: Any  # int or np.random.SeedSequence
    embedded: bool = False
    _generator: Any = field(default=None, repr=False, compare=False)

    # The frozen generator snapshot is identical across a round's specs
    # (one state_dict() call in dispatch): shipped via shared memory
    # once per round by the process backend, never pickled per client.
    shared_fields = ("generator_state",)
    # Each client downloads the generator with its model; nothing extra
    # comes back up — the paper's "Medium" class.
    comm_down_fields = ("generator_state",)

    def __getstate__(self):
        # The rebuilt generator is a per-process cache, never shipped.
        state = self.__dict__.copy()
        state["_generator"] = None
        return state

    def _build_generator(self):
        if self._generator is None:
            # Local import: repro.baselines.fedgen imports this module.
            from repro.baselines.fedgen import Generator

            output_dim = int(np.prod(self.sample_shape))
            generator = Generator(
                self.num_classes,
                output_dim,
                z_dim=self.z_dim,
                hidden=self.hidden,
                rng=np.random.default_rng(0),
            )
            generator.load_state_dict(self.generator_state)
            self._generator = generator
        return self._generator

    def build(self, state: Mapping[str, np.ndarray]) -> Callable:
        weight = float(self.weight)
        batch = int(self.batch)
        probs = np.asarray(self.label_probs, dtype=np.float64)
        probs = probs / probs.sum()
        rng = np.random.default_rng(self.seed)
        generator = self._build_generator()
        sample_shape = tuple(self.sample_shape)
        embedded = self.embedded

        def hook(model, logits, targets):
            if weight <= 0:
                return None
            labels = rng.choice(len(probs), size=batch, p=probs)
            z = Tensor(rng.standard_normal((batch, generator.z_dim)).astype(np.float32))
            with no_grad():
                flat = generator(z, labels)
            samples = flat.reshape(batch, *sample_shape)
            gen_logits = (
                model.forward_embedded(samples) if embedded else model(samples)
            )
            return F.cross_entropy(gen_logits, labels) * weight

        return hook
