"""The client abstraction.

A :class:`Client` owns a private shard and an independent RNG stream.
It never exposes raw data to the server — only trained state dicts —
matching the paper's privacy constraint that "none of the clients send
their raw data to the cloud server".
"""

from __future__ import annotations

from typing import Mapping

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.fl.trainer import GradHook, LocalResult, LocalTrainer, LossHook

__all__ = ["Client"]


class Client:
    """One federated participant.

    Parameters
    ----------
    client_id:
        Stable identifier (index into the population).
    dataset:
        The client's private training shard.
    rng:
        Independent generator driving this client's batch shuffling.
    """

    def __init__(self, client_id: int, dataset: ArrayDataset, rng: np.random.Generator) -> None:
        self.client_id = client_id
        self.dataset = dataset
        self.rng = rng

    def __len__(self) -> int:
        return len(self.dataset)

    @property
    def num_samples(self) -> int:
        return len(self.dataset)

    def class_counts(self, num_classes: int) -> np.ndarray:
        """Label histogram — the only distribution statistic a client may
        share (used by FedGen; CluSamp deliberately avoids even this)."""
        return self.dataset.class_counts(num_classes)

    def train(
        self,
        trainer: LocalTrainer,
        state: Mapping[str, np.ndarray],
        loss_hook: LossHook | None = None,
        grad_hook: GradHook | None = None,
        lr_override: float | None = None,
    ) -> LocalResult:
        """Run local training from ``state`` on this client's shard."""
        return trainer.train(
            state,
            self.dataset,
            self.rng,
            loss_hook=loss_hook,
            grad_hook=grad_hook,
            lr_override=lr_override,
        )

    def __repr__(self) -> str:
        return f"Client(id={self.client_id}, n={len(self.dataset)})"
