"""Server lifecycle callbacks.

:meth:`repro.fl.server.FederatedServer.fit` drives the phased round
loop (``select_cohort → dispatch → collect → aggregate``) and invokes
registered :class:`ServerCallback` hooks at fixed points:

``on_round_start(server, round_idx)``
    Before the cohort is sampled.
``on_evaluate(server, record)``
    After the periodic global-model evaluation, with
    ``record.accuracy``/``record.loss`` filled in.
``on_round_end(server, record)``
    After the round's :class:`~repro.fl.metrics.RoundRecord` is
    appended to the history.
``on_fit_end(server, history)``
    Once, when the ``fit`` call returns (including early stops).

A callback may set ``server.stop_training = True`` (typically from
``on_evaluate``) to end training after the current round — the
mechanism behind :class:`BestStateCheckpointer`'s early-stop patience.

Two concrete callbacks ship with the framework:

* :class:`ThroughputLogger` — wall-clock per round plus a throughput
  summary (rounds/s, client updates/s);
* :class:`BestStateCheckpointer` — keeps a deep copy of the best
  evaluated global state, optionally stops after ``patience``
  non-improving evaluations, and restores the best state at fit end.
"""

from __future__ import annotations

import time
from typing import TYPE_CHECKING, Callable

import numpy as np

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.metrics import RoundRecord, TrainingHistory
    from repro.fl.server import FederatedServer

__all__ = ["ServerCallback", "ThroughputLogger", "BestStateCheckpointer"]


class ServerCallback:
    """Base class for server lifecycle hooks; every hook is a no-op."""

    def on_round_start(self, server: "FederatedServer", round_idx: int) -> None:
        """Called before each round's cohort is sampled."""

    def on_evaluate(self, server: "FederatedServer", record: "RoundRecord") -> None:
        """Called after each periodic evaluation (accuracy/loss set)."""

    def on_round_end(self, server: "FederatedServer", record: "RoundRecord") -> None:
        """Called after each round's record is appended to the history."""

    def on_leg_failure(self, server: "FederatedServer", failure) -> None:
        """Called once per leg the resilience engine finally gave up on.

        ``failure`` is a :class:`repro.faults.policy.LegFailure`; the
        hook fires after the collect phase carried (or re-issued and
        then carried) the leg, before aggregation.  Only engaged fault
        policies ever invoke it.
        """

    def on_suspect_upload(self, server: "FederatedServer", record) -> None:
        """Called once per upload the anomaly screen flagged.

        ``record`` is a :class:`repro.robust.screen.SuspectRecord`; the
        hook fires during the aggregate phase, after every upload
        landed and before collaborator selection — under
        ``screen="carry"`` the flagged row has already been quarantined
        (its dispatched middleware state restored) when the hook runs.
        Only runs with ``FLConfig.screen`` set ever invoke it.
        """

    def on_fit_end(self, server: "FederatedServer", history: "TrainingHistory") -> None:
        """Called once when ``fit`` finishes (normally or early-stopped)."""


class ThroughputLogger(ServerCallback):
    """Round wall-clock timer with a throughput summary.

    Parameters
    ----------
    log:
        Sink for human-readable lines (default :func:`print`); pass
        e.g. ``logging.getLogger("repro").info`` or a no-op to silence.
    every:
        Emit a per-round line every ``every`` rounds (0 = summary only).
    """

    def __init__(self, log: Callable[[str], None] = print, every: int = 1) -> None:
        self.log = log
        self.every = int(every)
        self.round_times: list[float] = []
        self.clients_trained = 0
        self._start: float | None = None

    def on_round_start(self, server, round_idx) -> None:
        self._start = time.perf_counter()

    def on_round_end(self, server, record) -> None:
        if self._start is None:
            return
        elapsed = time.perf_counter() - self._start
        self._start = None
        self.round_times.append(elapsed)
        # Methods whose schedule trains a different number of clients
        # than the cohort size (FedCluster) report it in the extras.
        self.clients_trained += record.extras.get(
            "clients_trained", server.config.clients_per_round
        )
        if self.every and len(self.round_times) % self.every == 0:
            acc = f" acc={record.accuracy:.4f}" if record.accuracy is not None else ""
            self.log(f"round {record.round_idx + 1}: {elapsed:.3f}s{acc}")

    def on_fit_end(self, server, history) -> None:
        if not self.round_times:
            return
        summary = self.summary()
        self.log(
            f"{len(self.round_times)} rounds in {summary['total_s']:.2f}s "
            f"({summary['rounds_per_s']:.2f} rounds/s, "
            f"{summary['client_updates_per_s']:.1f} client updates/s)"
        )

    def summary(self) -> dict:
        """Machine-readable aggregate of the timed rounds."""
        total = float(sum(self.round_times))
        n = len(self.round_times)
        return {
            "rounds": n,
            "total_s": total,
            "mean_round_s": total / n if n else float("nan"),
            "rounds_per_s": n / total if total > 0 else float("inf"),
            "client_updates_per_s": self.clients_trained / total if total > 0 else float("inf"),
        }


class BestStateCheckpointer(ServerCallback):
    """Track the best evaluated global state; optionally early-stop.

    Parameters
    ----------
    patience:
        Stop training after this many consecutive non-improving
        evaluations (``None`` disables early stopping).
    min_delta:
        Minimum accuracy gain that counts as an improvement.
    restore:
        Reinstall the best state on the server (via
        :meth:`~repro.fl.server.FederatedServer.set_global_state`)
        when ``fit`` ends.
    """

    def __init__(
        self,
        patience: int | None = None,
        min_delta: float = 0.0,
        restore: bool = True,
    ) -> None:
        if patience is not None and patience < 1:
            raise ValueError("patience must be >= 1 (or None)")
        self.patience = patience
        self.min_delta = float(min_delta)
        self.restore = restore
        self.best_accuracy: float | None = None
        self.best_round: int | None = None
        self.best_state: dict | None = None
        self.stopped_early = False
        self._bad_evals = 0

    def on_evaluate(self, server, record) -> None:
        accuracy = record.accuracy
        if accuracy is None:
            return
        if self.best_accuracy is None or accuracy > self.best_accuracy + self.min_delta:
            self.best_accuracy = accuracy
            self.best_round = record.round_idx
            self.best_state = {
                key: np.array(value, copy=True)
                for key, value in server.global_state().items()
            }
            self._bad_evals = 0
        else:
            self._bad_evals += 1
            if self.patience is not None and self._bad_evals >= self.patience:
                self.stopped_early = True
                server.stop_training = True

    def on_fit_end(self, server, history) -> None:
        if self.restore and self.best_state is not None:
            server.set_global_state(self.best_state)
