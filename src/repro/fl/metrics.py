"""Evaluation and per-round history recording."""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.dataset import ArrayDataset
from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.autograd import no_grad
from repro.tensor.tensor import Tensor

__all__ = ["evaluate_model", "RoundRecord", "TrainingHistory"]


def evaluate_model(
    model: Module, dataset: ArrayDataset, batch_size: int = 256
) -> tuple[float, float]:
    """Return ``(accuracy, mean_loss)`` of ``model`` on ``dataset``.

    Runs in eval mode (batch-norm uses running stats, dropout off) and
    without autograd recording; restores the previous training mode.
    """
    was_training = model.training
    model.eval()
    correct = 0
    loss_total = 0.0
    n = len(dataset)
    if n == 0:
        raise ValueError("cannot evaluate on an empty dataset")
    try:
        with no_grad():
            for start in range(0, n, batch_size):
                x = dataset.features[start : start + batch_size]
                y = dataset.labels[start : start + batch_size]
                inputs = x if x.dtype.kind in "iu" else Tensor(x)
                logits = model(inputs)
                loss = F.cross_entropy(logits, y, reduction="sum")
                loss_total += float(loss.item())
                pred = logits.numpy().argmax(axis=1)
                correct += int((pred == y).sum())
    finally:
        model.train(was_training)
    return correct / n, loss_total / n


@dataclass
class RoundRecord:
    """Metrics of one FL round."""

    round_idx: int
    accuracy: float | None = None
    loss: float | None = None
    train_loss: float | None = None
    comm_up_params: int = 0
    comm_down_params: int = 0
    extras: dict = field(default_factory=dict)


@dataclass
class TrainingHistory:
    """Accumulated per-round records of one FL run."""

    records: list[RoundRecord] = field(default_factory=list)

    def append(self, record: RoundRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    @property
    def rounds(self) -> list[int]:
        return [r.round_idx for r in self.records if r.accuracy is not None]

    @property
    def accuracies(self) -> list[float]:
        """Accuracy series (evaluated rounds only) — Figure 5's y-axis."""
        return [r.accuracy for r in self.records if r.accuracy is not None]

    @property
    def final_accuracy(self) -> float:
        accs = self.accuracies
        if not accs:
            raise ValueError("history holds no evaluated rounds")
        return accs[-1]

    @property
    def best_accuracy(self) -> float:
        accs = self.accuracies
        if not accs:
            raise ValueError("history holds no evaluated rounds")
        return max(accs)

    def tail_accuracy(self, window: int = 5) -> float:
        """Mean accuracy over the last ``window`` evaluations.

        The paper reports mean±std of final accuracy across repetitions;
        within a single run the tail mean is the stable analogue.
        """
        accs = self.accuracies
        if not accs:
            raise ValueError("history holds no evaluated rounds")
        return float(np.mean(accs[-window:]))

    def rounds_to_accuracy(self, target: float) -> int | None:
        """First round reaching ``target`` accuracy (communication-
        efficiency metric of Section IV-C3), or None if never reached."""
        for r in self.records:
            if r.accuracy is not None and r.accuracy >= target:
                return r.round_idx
        return None

    def total_comm_params(self) -> int:
        """Total up+down communication in parameter counts."""
        return sum(r.comm_up_params + r.comm_down_params for r in self.records)
