"""Round schedulers — *when* rounds run, split out of ``fit()``.

:meth:`~repro.fl.server.FederatedServer.fit` owns *what* a training run
is (callbacks, finalisation, history); the scheduler owns *when* each
round's phases execute:

``sync``
    :class:`SyncRoundScheduler` — the reference schedule, extracted
    verbatim from the historical ``fit()`` loop body: each round blocks
    on its slowest leg before the next one dispatches.  Bit-identical
    to the pre-scheduler server by construction.
``async``
    :class:`AsyncRoundScheduler` — bounded-staleness overlap: dispatch
    of round ``t+1`` begins while round ``t`` stragglers finish, with
    at most ``max_staleness + 1`` rounds in flight.  With
    ``max_staleness=0`` the window is one round wide and the scheduler
    runs the *exact* sync per-round body — bit-identical to ``sync``
    on every backend, fault path and method.  With ``max_staleness>0``
    it drives the execution backend's cross-round ``submit_group``
    seam and the method's *async adapter* (FedCross's speculative
    cross-aggregation — see
    :meth:`repro.core.fedcross.FedCrossServer.async_adapter`).

Overlapped-driver semantics (``max_staleness`` = S > 0)
-------------------------------------------------------
* **Window.**  Round ``t`` is created (cohort sampled, plans built —
  server RNG draws stay in round order) once round ``t - S - 1`` has
  completed, so at most ``S + 1`` rounds are ever in flight and a
  round's upload buffer (one of ``S + 1`` cycling slots) is never
  reused while its legs can still land.
* **Per-client serialisation.**  A client trains one leg at a time; a
  leg whose client is still busy with an earlier round waits in the
  ready queue.  The overlap win comes from *each client* starting its
  next-round leg the moment its own previous leg lands instead of
  waiting for the cohort's slowest straggler.
* **Staleness.**  Every pool row carries a version (the last round
  that blended it).  Uploads are speculatively blended by the method
  adapter as they land; a round never blends a row a *newer* round
  already owns — such late uploads are discarded and counted as
  wasted work (``stale_uploads`` in the round's ``async`` extras).
* **Faults compose per round.**  The seeded fault model pre-drops legs
  at creation (identical decisions to the sync engine), infra failures
  are retried with backoff (non-blocking: retries are re-queued with a
  not-before time on the injectable clock — the driver never calls
  ``time.sleep`` while other legs could progress), ``redispatch``
  grants one extra reissue, and quorum / ``fail`` policies are checked
  at each round's completion.  A failed leg's client RNG is restored
  to its submission snapshot *before* the client is released, so later
  legs never train from a half-advanced stream; the carry itself (the
  dispatched state re-landing in the upload row) happens at round
  completion, after the snapshot restore.
* **Communication.**  In-process backends are charged analytically per
  completed round from counted submissions/landings; backends that
  measure real transfers (``distributed``) are never analytically
  charged (``measures_comm``), so totals stay measured-exact — with
  overlap, per-round ledger attribution follows landing windows.

The driver is single-threaded: all server/adapter state is touched
from the caller's thread, with the execution backend's futures as the
only concurrency boundary — the same discipline as streaming collect.
"""

from __future__ import annotations

import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, Future, wait
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.faults.policy import FaultError, LegFailure, QuorumError
from repro.fl.metrics import RoundRecord
from repro.utils.registry import Registry

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.fl.server import DispatchPlan, FederatedServer

__all__ = [
    "RoundScheduler",
    "SyncRoundScheduler",
    "AsyncRoundScheduler",
    "ROUND_SCHEDULERS",
    "register_round_scheduler",
    "build_round_scheduler",
    "run_sync_round",
]


ROUND_SCHEDULERS = Registry("round scheduler", error_type=KeyError)


def register_round_scheduler(name: str):
    """Class decorator registering a :class:`RoundScheduler`."""
    return ROUND_SCHEDULERS.register(name)


def build_round_scheduler(config) -> "RoundScheduler":
    """Scheduler instance for ``config.round_mode`` (default ``sync``)."""
    mode = getattr(config, "round_mode", "sync") or "sync"
    return ROUND_SCHEDULERS.resolve(mode).from_config(config)


def run_sync_round(server, cbs, local_round: int, rounds: int, eval_every: int) -> None:
    """One reference-schedule round — the exact body of the historical
    ``fit()`` loop (callbacks, cohort, phases, ledger, record, eval
    cadence), so both the sync scheduler and the async scheduler's
    zero-staleness window share it verbatim."""
    for cb in cbs:
        cb.on_round_start(server, server.round_idx)
    # Through the legacy alias so pre-phase subclasses that
    # still override sample_clients() keep their sampling.
    active = server.sample_clients()
    server.last_suspects = []
    extras = server.run_round(active) or {}
    if server.last_leg_failures:
        extras.setdefault(
            "leg_failures",
            [f.summary() for f in server.last_leg_failures],
        )
    if server.last_suspects:
        extras.setdefault(
            "suspect_uploads",
            [r.summary() for r in server.last_suspects],
        )
    up, down = server.ledger.end_round()
    record = RoundRecord(
        round_idx=server.round_idx,
        train_loss=extras.pop("train_loss", None),
        comm_up_params=up,
        comm_down_params=down,
        extras=extras,
    )
    # Compare against the *local* round counter: ``server.round_idx``
    # is global across fit() calls, so a resumed fit(n) would
    # otherwise never hit its guaranteed final-round evaluation.
    if (server.round_idx + 1) % eval_every == 0 or local_round == rounds - 1:
        record.accuracy, record.loss = server.evaluate()
        for cb in cbs:
            cb.on_evaluate(server, record)
    server.history.append(record)
    for cb in cbs:
        cb.on_round_end(server, record)
    server.round_idx += 1


class RoundScheduler:
    """Drives the per-round loop inside :meth:`FederatedServer.fit`."""

    name = "abstract"

    @classmethod
    def from_config(cls, config) -> "RoundScheduler":
        return cls()

    def run(self, server: "FederatedServer", rounds: int, cbs: list) -> None:
        raise NotImplementedError


@register_round_scheduler("sync")
class SyncRoundScheduler(RoundScheduler):
    """The reference schedule: each round blocks on its slowest leg."""

    name = "sync"

    def run(self, server, rounds, cbs) -> None:
        eval_every = server.config.eval_every
        for local_round in range(rounds):
            run_sync_round(server, cbs, local_round, rounds, eval_every)
            if server.stop_training:
                break


def _restore_rng(client, snapshot) -> None:
    client.rng.bit_generator.state = snapshot


def _describe(failures: "dict[int, LegFailure]") -> str:
    parts = [
        f"client {f.client_id} (row {f.row}): {f.kind}"
        + (f" after {f.attempts} attempt(s)" if f.attempts else "")
        for _, f in sorted(failures.items())
    ]
    return "; ".join(parts)


@dataclass
class _Leg:
    """One in-flight (or queued) training leg of the overlapped driver."""

    t: int
    i: int  # plan index within its round
    client: Any
    row: int
    plan: "DispatchPlan"
    attack: Any = None
    tries: int = 0
    reissued: bool = False
    reserved: bool = False  # this leg itself holds its client's busy slot
    snapshot: Any = None  # client RNG state at (re)submission
    carry_state: "dict | None" = None  # dispatched state (copied at submit)
    not_before: float = 0.0  # backoff gate on the injectable clock
    deadline: "float | None" = None
    group: Any = None
    j: int = 0  # index within its submission group
    future: "Future | None" = None


@dataclass
class _Round:
    """Book-keeping for one created-but-not-completed round."""

    t: int
    local_round: int
    active: list
    plans: list
    rows: list
    uploads: Any
    ctx: Any
    results: list
    tries: list
    carry: dict = field(default_factory=dict)
    failures: "dict[int, LegFailure]" = field(default_factory=dict)
    resolved: int = 0
    downs: int = 0
    ups: int = 0
    max_stale: int = 0

    @property
    def done(self) -> bool:
        return self.resolved >= len(self.plans)


@register_round_scheduler("async")
class AsyncRoundScheduler(RoundScheduler):
    """Bounded-staleness overlapped schedule (see module docstring).

    ``clock`` / ``sleep`` are injectable (default ``time.monotonic`` /
    ``time.sleep``) so retry backoff and leg deadlines are testable
    without real waiting — and immune to wall-clock (NTP) steps.
    """

    name = "async"

    def __init__(self, max_staleness: int = 0, clock=time.monotonic, sleep=time.sleep) -> None:
        if max_staleness < 0:
            raise ValueError("max_staleness must be >= 0")
        self.max_staleness = int(max_staleness)
        self.clock = clock
        self.sleep = sleep

    @classmethod
    def from_config(cls, config) -> "AsyncRoundScheduler":
        return cls(max_staleness=getattr(config, "max_staleness", 0))

    def run(self, server, rounds, cbs) -> None:
        if self.max_staleness == 0:
            # Window of width one: the sync schedule run through the
            # scheduler seam — bit-identical to ``sync`` on every
            # backend, method and fault path by construction.
            eval_every = server.config.eval_every
            for local_round in range(rounds):
                run_sync_round(server, cbs, local_round, rounds, eval_every)
                if server.stop_training:
                    break
            return
        self._run_overlapped(server, rounds, cbs)

    # -- overlapped driver -------------------------------------------------
    def _run_overlapped(self, server, rounds, cbs) -> None:
        adapter_factory = getattr(server, "async_adapter", None)
        if adapter_factory is None:
            raise ValueError(
                f"round_mode='async' with max_staleness={self.max_staleness} "
                f"needs a method with speculative cross-aggregation support; "
                f"{server.method_name!r} provides no async_adapter() "
                "(run with max_staleness=0 for the sequential async window)"
            )
        backend = server.executor.backend
        if not getattr(backend, "supports_async", False):
            raise ValueError(
                f"execution backend {backend.name!r} does not support "
                "cross-round in-flight legs (submit_group); use "
                "serial/thread/process/distributed or max_staleness=0"
            )
        adapter = adapter_factory()
        policy = server.fault_policy
        S = self.max_staleness
        k = server.config.clients_per_round
        backend.reserve((S + 1) * k)
        eval_every = server.config.eval_every
        start = server.round_idx
        states: "dict[int, _Round]" = {}
        ready: "deque[_Leg]" = deque()
        inflight: "dict[Future, _Leg]" = {}
        busy: set = set()
        next_create = 0
        next_complete = 0
        stop = False
        try:
            while next_complete < rounds:
                while (
                    not stop
                    and next_create < rounds
                    and next_create - next_complete <= S
                ):
                    t = start + next_create
                    states[next_create] = self._create_round(
                        server, adapter, cbs, t, next_create, ready
                    )
                    next_create += 1
                if next_complete == next_create:
                    break  # stop_training drained every created round
                self._submit_ready(server, adapter, ready, busy, inflight, states)
                self._wait_and_land(server, adapter, policy, ready, busy, inflight, states)
                while next_complete < next_create and states[next_complete].done:
                    rs = states.pop(next_complete)
                    self._complete_round(server, adapter, cbs, rs, rounds, eval_every)
                    next_complete += 1
                    if server.stop_training:
                        stop = True
        finally:
            if inflight:
                for future in inflight:
                    future.cancel()
                wait(list(inflight))  # drain zombies; results discarded
            adapter.finalize()

    def _create_round(self, server, adapter, cbs, t: int, local_round: int, ready) -> _Round:
        server.round_idx = t  # creation-time phases draw RNG in round order
        for cb in cbs:
            cb.on_round_start(server, t)
        active = server.sample_clients()
        server.last_suspects = []
        plans = server.dispatch(active)
        if len(active) != len(plans):
            raise ValueError(
                f"dispatch produced {len(plans)} plans for "
                f"{len(active)} active clients"
            )
        rows = [int(plan.context.get("row", i)) for i, plan in enumerate(plans)]
        n = len(active)
        uploads = server._model_buffer(("async", t % (self.max_staleness + 1)), n)
        ctx = adapter.begin_round(t, uploads)
        rs = _Round(
            t=t,
            local_round=local_round,
            active=active,
            plans=plans,
            rows=rows,
            uploads=uploads,
            ctx=ctx,
            results=[None] * n,
            tries=[0] * n,
        )
        policy = server.fault_policy
        population = server.fault_model
        if population is not None:
            faults = population.leg_faults(t, [c.client_id for c in active])
            for i, fault in enumerate(faults):
                if fault.kind is not None:
                    rs.failures[i] = population.failure_for(
                        fault, i, active[i].client_id, rows[i]
                    )
            if rs.failures and policy.failure_policy == "fail":
                raise FaultError(
                    f"round {t} aborted under failure_policy='fail': "
                    f"{_describe(rs.failures)}"
                )
        attacks = {}
        if population is not None:
            for i in range(n):
                spec = population.attack_for(t, active[i].client_id)
                if spec is not None:
                    attacks[i] = spec
        for i in range(n):
            if i in rs.failures:
                # Pre-decided simulated fault: never dispatched.  Copy
                # the dispatched state *now* — a later round's
                # speculative blend may rewrite the live pool row
                # before this round's carry lands.
                rs.carry[i] = adapter.plan_state(rows[i])
                rs.resolved += 1
            else:
                ready.append(
                    _Leg(
                        t=local_round,
                        i=i,
                        client=active[i],
                        row=rows[i],
                        plan=plans[i],
                        attack=attacks.get(i),
                    )
                )
        return rs

    def _submit_ready(self, server, adapter, ready, busy, inflight, states) -> None:
        import dataclasses

        now = self.clock()
        eligible: "dict[int, list[_Leg]]" = {}
        hold = []
        while ready:
            leg = ready.popleft()
            if leg.not_before > now or (
                leg.client.client_id in busy and not leg.reserved
            ):
                # Backoff-gated, or the client is busy with *another*
                # leg.  A retry re-queued by ``_fail`` keeps its own
                # client reservation (``reserved``) — busy then means
                # "reserved for exactly this leg", not "occupied".
                hold.append(leg)
            else:
                busy.add(leg.client.client_id)
                leg.reserved = False
                eligible.setdefault(leg.t, []).append(leg)
        ready.extend(hold)
        if not eligible:
            return
        policy = server.fault_policy
        backend = server.executor.backend
        for t in sorted(eligible):
            legs = eligible[t]
            rs = states[t]
            sub_plans = []
            for leg in legs:
                leg.tries += 1
                rs.tries[leg.i] += 1
                leg.snapshot = leg.client.rng.bit_generator.state
                if leg.carry_state is None:
                    # First submission: read (and privately copy) the
                    # row's *current* state — retries re-train this
                    # exact state, and the carry degradation restores
                    # it, even if speculative blends move the live row
                    # under the in-flight leg.
                    leg.carry_state = adapter.plan_state(leg.row)
                    rs.max_stale = max(
                        rs.max_stale, (rs.t - 1) - adapter.version_of(leg.row)
                    )
                rs.carry[leg.i] = leg.carry_state
                sub_plans.append(
                    dataclasses.replace(leg.plan, state=leg.carry_state)
                )
            rs.downs += len(legs)
            sub_attacks = {
                j: leg.attack for j, leg in enumerate(legs) if leg.attack is not None
            }
            group = backend.submit_group(
                server.trainer,
                [leg.client for leg in legs],
                sub_plans,
                [leg.row for leg in legs],
                rs.uploads,
                attacks=sub_attacks or None,
            )
            deadline = (
                None
                if policy.leg_timeout is None
                else self.clock() + float(policy.leg_timeout)
            )
            for j, leg in enumerate(legs):
                leg.group = group
                leg.j = j
                leg.future = group.futures[j]
                leg.deadline = deadline
                inflight[leg.future] = leg

    def _wait_and_land(self, server, adapter, policy, ready, busy, inflight, states) -> None:
        if not inflight:
            if ready:
                # Nothing in flight: every queued leg is either backoff
                # -gated or held behind a gated retry's busy client.
                # Advance the injectable clock to the earliest gate —
                # min over *future* gates only, else a held leg with
                # not_before=0 would pin the gate at zero and spin.
                now = self.clock()
                gates = [leg.not_before for leg in ready if leg.not_before > now]
                if gates:
                    self.sleep(min(gates) - now)
            return
        now = self.clock()
        timeout = None
        deadlines = [
            leg.deadline for leg in inflight.values() if leg.deadline is not None
        ]
        if deadlines:
            timeout = max(0.0, min(deadlines) - now)
        gates = [leg.not_before for leg in ready if leg.not_before > now]
        if gates:
            gate_wait = max(0.0, min(gates) - now)
            timeout = gate_wait if timeout is None else min(timeout, gate_wait)
        done, _ = wait(set(inflight), timeout=timeout, return_when=FIRST_COMPLETED)
        for future in done:
            leg = inflight.pop(future)
            self._land(server, adapter, policy, leg, future, ready, busy, states)
        if not done:
            now = self.clock()
            expired = [
                leg
                for future, leg in list(inflight.items())
                if leg.deadline is not None and leg.deadline <= now
            ]
            for leg in expired:
                inflight.pop(leg.future, None)
                leg.future.cancel()
                wait([leg.future])  # drain: late work is discarded
                leg.group.leg_done()
                failure = LegFailure(
                    index=leg.i,
                    client_id=leg.client.client_id,
                    row=leg.row,
                    kind="timeout",
                    message="leg did not finish before the wall-clock deadline",
                    drained=True,
                )
                self._fail(server, policy, leg, failure, ready, busy, states)

    def _land(self, server, adapter, policy, leg, future, ready, busy, states) -> None:
        rs = states[leg.t]
        try:
            raw = future.result()
        except (KeyboardInterrupt, SystemExit, GeneratorExit):
            raise
        except BaseException as exc:  # noqa: BLE001 - policy decides
            leg.group.leg_done()
            failure = LegFailure(
                index=leg.i,
                client_id=leg.client.client_id,
                row=leg.row,
                kind="error",
                message=f"{type(exc).__name__}: {exc}",
            )
            self._fail(server, policy, leg, failure, ready, busy, states)
            return
        result = leg.group.finalize(leg.j, raw)
        leg.group.leg_done()
        busy.discard(leg.client.client_id)
        rs.results[leg.i] = result
        rs.ups += 1
        rs.failures.pop(leg.i, None)
        rs.resolved += 1
        server.round_idx = rs.t
        server._uploads = rs.uploads  # on_upload consumers key on it
        server.on_upload(leg.row, result)
        adapter.upload_landed(rs.ctx, leg.row)

    def _fail(self, server, policy, leg, failure, ready, busy, states) -> None:
        rs = states[leg.t]
        failure = failure.replace(
            index=leg.i,
            client_id=leg.client.client_id,
            row=leg.row,
            attempts=leg.tries,
        )
        server.ledger.note_leg_failure()
        # Restore the submission-time RNG snapshot immediately — before
        # the client can be released or resubmitted — so no later leg
        # ever trains from a half-advanced stream, and a carry lands
        # only after the rewind (the sync engine's contract).
        _restore_rng(leg.client, leg.snapshot)
        if failure.retryable and leg.tries <= policy.leg_retries:
            leg.not_before = self.clock() + policy.backoff_delay(leg.tries)
            leg.reserved = True  # client stays reserved for its retry
            ready.append(leg)
            return
        if (
            failure.retryable
            and policy.failure_policy == "redispatch"
            and not leg.reissued
        ):
            leg.reissued = True
            leg.not_before = self.clock()
            leg.reserved = True
            ready.append(leg)
            return
        busy.discard(leg.client.client_id)
        rs.failures[leg.i] = failure
        rs.resolved += 1

    def _complete_round(self, server, adapter, cbs, rs: _Round, rounds, eval_every) -> None:
        from repro.fl.trainer import LocalResult  # lazy: import cycle

        server.round_idx = rs.t
        server._uploads = rs.uploads
        policy = server.fault_policy
        n = len(rs.active)
        if rs.failures and policy.failure_policy == "fail":
            raise FaultError(
                f"round {rs.t} aborted under failure_policy='fail': "
                f"{_describe(rs.failures)}"
            )
        survivors = n - len(rs.failures)
        required = policy.required_legs(n)
        if survivors < required:
            raise QuorumError(
                f"round {rs.t}: {survivors}/{n} fresh uploads, "
                f"quorum {policy.quorum:g} requires {required} — "
                f"{_describe(rs.failures)}"
            )
        # Carry the degraded legs: the dispatched state re-lands in the
        # upload row (CrossAggr / GramTracker keep a full K-row view).
        for i, _failure in sorted(rs.failures.items()):
            state = rs.carry[i]
            if rs.tries[i] == 0 and adapter.version_of(rs.rows[i]) <= rs.t - 1:
                # Pre-dropped leg (never submitted): its creation-time
                # copy predates the reconciliation of rounds < t, which
                # all completed by now.  Re-read the live row — unless a
                # newer round already speculatively owns it, in which
                # case the creation-time snapshot stays the closest
                # thing to "the state this round dispatched".
                state = adapter.plan_state(rs.rows[i])
                rs.carry[i] = state
            rs.uploads.set_state(rs.rows[i], state)
            rs.results[i] = LocalResult(
                state=state, num_samples=0, num_steps=0, mean_loss=0.0
            )
            server.on_upload(rs.rows[i], rs.results[i])
        extras = adapter.complete_round(rs.ctx, rs.active, rs.results, rs.plans) or {}
        info = extras.get("async")
        if isinstance(info, dict):
            info["max_dispatch_staleness"] = max(0, rs.max_stale)
        ordered = [rs.failures[i] for i in sorted(rs.failures)]
        server.last_leg_failures = ordered
        if ordered:
            extras.setdefault("leg_failures", [f.summary() for f in ordered])
        if not getattr(server.executor.backend, "measures_comm", False):
            # Analytic charge from counted leg traffic: one down per
            # (re)submission, one up per fresh landing — carried and
            # pre-dropped legs move nothing.
            server.ledger.record_down(rs.downs * server.model_size)
            server.ledger.record_up(rs.ups * server.model_size)
        up, down = server.ledger.end_round()
        record = RoundRecord(
            round_idx=rs.t,
            train_loss=extras.pop("train_loss", None),
            comm_up_params=up,
            comm_down_params=down,
            extras=extras,
        )
        if (rs.t + 1) % eval_every == 0 or rs.local_round == rounds - 1:
            record.accuracy, record.loss = server.evaluate()
            for cb in cbs:
                cb.on_evaluate(server, record)
        server.history.append(record)
        for cb in cbs:
            cb.on_round_end(server, record)
        for failure in ordered:
            for cb in server.callbacks:
                cb.on_leg_failure(server, failure)
        server.round_idx = rs.t + 1
