"""Communication accounting.

The paper's Table I ranks methods by per-round communication overhead:
FedAvg / FedProx / CluSamp / FedCross move ``2K`` model copies per
round (K down, K up); SCAFFOLD doubles this with control variates; and
FedGen additionally dispatches a generator to every client. The ledger
counts parameters moved so benches can regenerate that table, and
:func:`analytic_round_cost` gives the closed-form cost model.
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["CommunicationLedger", "analytic_round_cost", "COMM_OVERHEAD_CLASS"]

# The qualitative classes the paper's Table I assigns.
COMM_OVERHEAD_CLASS = {
    "fedavg": "Low",
    "fedprox": "Low",
    "scaffold": "High",
    "fedgen": "Medium",
    "clusamp": "Low",
    "fedcross": "Low",
}


@dataclass
class CommunicationLedger:
    """Per-round upload/download parameter counters.

    ``measured`` flags that an execution backend is recording *real*
    per-transfer counts this round (the ``distributed`` backend counts
    the parameters actually crossing its sockets); the server then
    skips its analytic per-round charge so the two accounting paths
    never double-count.  The flag resets at :meth:`end_round`.
    """

    up_params: int = 0
    down_params: int = 0
    history: list = field(default_factory=list)
    measured: bool = False
    failed_legs: int = 0

    def record_down(self, num_params: int) -> None:
        """Server → client transfer of ``num_params`` scalars."""
        self.down_params += int(num_params)

    def record_up(self, num_params: int) -> None:
        """Client → server transfer of ``num_params`` scalars."""
        self.up_params += int(num_params)

    def mark_measured(self) -> None:
        """Declare this round's counts measured at the transport."""
        self.measured = True

    def note_leg_failure(self) -> None:
        """Count one leg failure observed this round (any kind).

        A diagnostic counter for the resilience engine — failures cost
        communication (a dispatched model that never uploads), and the
        counter lets benches report wasted downlink alongside the
        up/down totals.  Resets at :meth:`end_round`.
        """
        self.failed_legs += 1

    def end_round(self) -> tuple[int, int]:
        """Close the round; returns ``(up, down)`` and resets counters."""
        snapshot = (self.up_params, self.down_params)
        self.history.append(snapshot)
        self.up_params = 0
        self.down_params = 0
        self.measured = False
        self.failed_legs = 0
        return snapshot

    def total(self) -> int:
        finished = sum(u + d for u, d in self.history)
        return finished + self.up_params + self.down_params


def analytic_round_cost(
    method: str, k_clients: int, model_params: int, generator_params: int = 0
) -> dict[str, float]:
    """Closed-form per-round communication of Section IV-C3.

    Returns a dict with ``down``, ``up`` and ``total`` in scalar counts,
    plus ``model_equivalents`` (total / model size) — the unit the paper
    uses ("2K models", "2K models + 2K control variables", ...).
    """
    method = method.lower()
    if method in ("fedavg", "fedprox", "clusamp", "fedcross"):
        down = k_clients * model_params
        up = k_clients * model_params
    elif method == "scaffold":
        # Model + same-sized control variate in each direction.
        down = 2 * k_clients * model_params
        up = 2 * k_clients * model_params
    elif method == "fedgen":
        down = k_clients * (model_params + generator_params)
        up = k_clients * model_params
    else:
        raise KeyError(f"unknown method {method!r}")
    total = down + up
    return {
        "down": float(down),
        "up": float(up),
        "total": float(total),
        "model_equivalents": total / model_params if model_params else 0.0,
    }
