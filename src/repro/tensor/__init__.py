"""Pure-NumPy reverse-mode autograd engine.

This package is the compute substrate for the FedCross reproduction: a
minimal but complete tensor library with automatic differentiation,
sufficient to train the CNN / ResNet / VGG / LSTM model families used in
the paper's evaluation.

Public API
----------
``Tensor``
    The autograd tensor type. Wraps a ``numpy.ndarray`` and records the
    operations applied to it so that :meth:`Tensor.backward` can compute
    gradients for every tensor with ``requires_grad=True``.
``no_grad`` / ``is_grad_enabled``
    Context manager disabling graph construction (used for evaluation).
``functional``
    Higher-level differentiable functions (softmax, losses, conv2d, ...).
``gradcheck``
    Numerical gradient verification used heavily by the test-suite.
"""

from repro.tensor.autograd import is_grad_enabled, no_grad
from repro.tensor.tensor import Tensor, as_tensor
from repro.tensor import functional
from repro.tensor.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "gradcheck",
]
