"""Reverse-mode autograd engine on pluggable array backends.

This package is the compute substrate for the FedCross reproduction: a
minimal but complete tensor library with automatic differentiation,
sufficient to train the CNN / ResNet / VGG / LSTM model families used in
the paper's evaluation.

Public API
----------
``Tensor``
    The autograd tensor type. Wraps an array of the active
    :class:`~repro.tensor.backend.ArrayBackend` (``numpy.ndarray`` by
    default) and records the operations applied to it so that
    :meth:`Tensor.backward` can compute gradients for every tensor with
    ``requires_grad=True``.
``no_grad`` / ``is_grad_enabled``
    Context manager disabling graph construction (used for evaluation).
``functional``
    Higher-level differentiable functions (softmax, losses, conv2d, ...).
``gradcheck``
    Numerical gradient verification used heavily by the test-suite.
``active_backend`` / ``set_array_backend`` / ``use_array_backend``
    Array-backend selection (also via ``FLConfig.array_backend`` /
    ``--array-backend`` / ``REPRO_ARRAY_BACKEND``); ``to_host`` brings
    backend arrays to host memory at state-dict/upload boundaries.
"""

from repro.tensor.autograd import is_grad_enabled, no_grad
from repro.tensor.backend import (
    ARRAY_BACKENDS,
    ArrayBackend,
    active_backend,
    available_array_backends,
    register_array_backend,
    resolve_array_backend,
    set_array_backend,
    to_host,
    use_array_backend,
)
from repro.tensor.tensor import Tensor, as_tensor
from repro.tensor import functional
from repro.tensor.gradcheck import gradcheck

__all__ = [
    "Tensor",
    "as_tensor",
    "no_grad",
    "is_grad_enabled",
    "functional",
    "gradcheck",
    "ArrayBackend",
    "ARRAY_BACKENDS",
    "register_array_backend",
    "resolve_array_backend",
    "available_array_backends",
    "active_backend",
    "set_array_backend",
    "use_array_backend",
    "to_host",
]
