"""Pluggable array backends for the tensor/autograd substrate.

Every client forward/backward — the bulk of wall-clock in the paper's
Table-2 runs — used to be hard-coded ``numpy`` across
:mod:`repro.tensor`, :mod:`repro.nn` and :mod:`repro.optim`.  This
module makes *which array library executes that math* a pluggable
backend in the same registry style as :mod:`repro.core.storage`'s pool
backends and :mod:`repro.fl.execution`'s execution backends:

``numpy``
    :class:`NumpyBackend` — thin delegations to the exact same NumPy
    calls the pre-dispatch code made, so the dispatched path is
    **bit-identical** to the seed direct-numpy path (the cross-backend
    equivalence matrix enforces this end to end).  The default.
``cupy``
    :class:`CupyBackend` — the same op surface on CuPy device arrays.
    Registered only when ``cupy`` is importable, so CPU-only
    environments never pay an import error; host↔device transfer
    happens in ``asarray`` / :func:`to_host` at the state-dict and
    upload boundaries.
``instrumented``
    :class:`InstrumentedBackend` — wraps a base backend (numpy by
    default) and counts every dispatched op.  Exists for the coverage
    tests that prove the hot path routes *all* math through the
    dispatch layer rather than reaching for raw ``np.`` calls.

The op surface (:data:`OP_SURFACE`) is deliberately small: array
construction/conversion, the elementwise transcendentals the autograd
ops need, shape/indexing helpers, ``einsum`` (the im2col convolution
workhorse), scatter-add, and a host-seeded uniform draw (dropout masks
stay bit-reproducible across backends because the *host* generator
always produces the bits).  Everything else the tensor code does uses
array **methods** (``.sum``, ``.reshape``, ``.astype``, ``@``…), which
NumPy and CuPy share, so it needs no dispatch.

Selection
---------
The active backend is process-global (workers of parallel execution
backends set it from :class:`~repro.fl.execution.TrainerSpec`):

* ``FLConfig.array_backend`` / ``--array-backend`` for simulations;
* ``REPRO_ARRAY_BACKEND`` as the environment default;
* :func:`set_array_backend` / :func:`use_array_backend` directly.

Adding a backend is three steps: subclass :class:`ArrayBackend`,
implement the :data:`OP_SURFACE` methods, and decorate with
``@register_array_backend("name")`` — it is then selectable through
every knob above.
"""

from __future__ import annotations

import contextlib
import os
from collections import Counter

import numpy as np

from repro.utils.registry import Registry

__all__ = [
    "ArrayBackend",
    "NumpyBackend",
    "InstrumentedBackend",
    "OP_SURFACE",
    "ARRAY_BACKENDS",
    "register_array_backend",
    "resolve_array_backend",
    "available_array_backends",
    "active_backend",
    "set_array_backend",
    "use_array_backend",
    "to_host",
]


#: Every op an :class:`ArrayBackend` must provide.  The instrumented
#: backend wraps exactly these; the registry test asserts the numpy
#: reference implements them all.
OP_SURFACE = (
    # construction / conversion
    "asarray",
    "to_numpy",
    "zeros",
    "ones",
    "zeros_like",
    "ones_like",
    "arange",
    # elementwise
    "exp",
    "log",
    "log1p",
    "sqrt",
    "abs",
    "sign",
    "tanh",
    "maximum",
    "where",
    "clip",
    # shape / broadcast
    "pad",
    "expand_dims",
    "swapaxes",
    "broadcast_to",
    "concatenate",
    "stack",
    # indexing / gather / scatter
    "take",
    "take_along_axis",
    "put_along_axis",
    "add_at",
    # linear algebra
    "einsum",
    # random (host-seeded for cross-backend determinism)
    "random_uniform",
)


ARRAY_BACKENDS = Registry("array backend", error_type=ValueError)


def register_array_backend(name: str):
    """Class decorator registering an :class:`ArrayBackend`."""
    return ARRAY_BACKENDS.register(name)


def resolve_array_backend(name: str) -> type["ArrayBackend"]:
    """Backend class registered under ``name`` (case-insensitive).

    Unknown names raise :class:`ValueError` naming every registered
    backend, matching the pool-storage registry's contract so the
    ``--array-backend`` CLI validator reports typos the same way.
    """
    return ARRAY_BACKENDS.resolve(name)


def available_array_backends() -> list[str]:
    return ARRAY_BACKENDS.available()


class ArrayBackend:
    """One array library behind the tensor substrate.

    Subclasses set :attr:`array_type` (the native array class, used by
    ``Tensor`` coercion to recognise already-converted values) and
    :attr:`device`, and implement every :data:`OP_SURFACE` method.
    """

    name = "abstract"
    device = "abstract"
    array_type: type = object

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}(name={self.name!r}, device={self.device!r})"


@register_array_backend("numpy")
class NumpyBackend(ArrayBackend):
    """Reference implementation: thin delegations to NumPy.

    Each method makes *exactly* the call the pre-dispatch tensor code
    made, so routing through this backend is bit-identical to the seed
    direct-numpy path — the property the equivalence-matrix leg in
    ``tests/integration/test_backend_matrix.py`` pins down.
    """

    device = "cpu"
    array_type = np.ndarray

    # -- construction / conversion ----------------------------------------
    def asarray(self, value, dtype=None):
        return np.asarray(value, dtype=dtype)

    def to_numpy(self, array):
        return np.asarray(array)

    def zeros(self, shape, dtype=None):
        return np.zeros(shape, dtype=dtype)

    def ones(self, shape, dtype=None):
        return np.ones(shape, dtype=dtype)

    def zeros_like(self, array):
        return np.zeros_like(array)

    def ones_like(self, array):
        return np.ones_like(array)

    def arange(self, *args, **kwargs):
        return np.arange(*args, **kwargs)

    # -- elementwise -------------------------------------------------------
    def exp(self, array):
        return np.exp(array)

    def log(self, array):
        return np.log(array)

    def log1p(self, array):
        return np.log1p(array)

    def sqrt(self, array):
        return np.sqrt(array)

    def abs(self, array):
        return np.abs(array)

    def sign(self, array):
        return np.sign(array)

    def tanh(self, array):
        return np.tanh(array)

    def maximum(self, a, b):
        return np.maximum(a, b)

    def where(self, condition, a, b):
        return np.where(condition, a, b)

    def clip(self, array, low, high):
        return np.clip(array, low, high)

    # -- shape / broadcast -------------------------------------------------
    def pad(self, array, pad_width):
        return np.pad(array, pad_width)

    def expand_dims(self, array, axis):
        return np.expand_dims(array, axis)

    def swapaxes(self, array, axis1, axis2):
        return np.swapaxes(array, axis1, axis2)

    def broadcast_to(self, array, shape):
        return np.broadcast_to(array, shape)

    def concatenate(self, arrays, axis=0):
        return np.concatenate(arrays, axis=axis)

    def stack(self, arrays, axis=0):
        return np.stack(arrays, axis=axis)

    # -- indexing / gather / scatter ---------------------------------------
    def take(self, array, indices, axis=None):
        return np.take(array, indices, axis=axis)

    def take_along_axis(self, array, indices, axis):
        return np.take_along_axis(array, indices, axis)

    def put_along_axis(self, array, indices, values, axis):
        np.put_along_axis(array, indices, values, axis)

    def add_at(self, array, indices, values):
        np.add.at(array, indices, values)

    # -- linear algebra ----------------------------------------------------
    def einsum(self, subscripts, *operands):
        return np.einsum(subscripts, *operands, optimize=True)

    # -- random ------------------------------------------------------------
    def random_uniform(self, rng, shape):
        """Uniform [0, 1) draw of ``shape`` from the **host** generator.

        Drawing on the host keeps mask bits identical across backends
        (device RNGs have different streams); non-host backends
        transfer the result.
        """
        return rng.random(shape)


def _counting_op(op: str):
    def method(self, *args, **kwargs):
        self.counts[op] += 1
        return getattr(self.base, op)(*args, **kwargs)

    method.__name__ = op
    method.__qualname__ = f"InstrumentedBackend.{op}"
    method.__doc__ = f"Counted dispatch of ``{op}`` to the base backend."
    return method


@register_array_backend("instrumented")
class InstrumentedBackend(ArrayBackend):
    """Counting wrapper around a base backend (numpy by default).

    ``counts`` maps op name → number of dispatched calls.  The
    dispatch-coverage test trains a hot-path step under this backend
    and asserts the expected ops were actually routed through the
    dispatch layer — i.e. that no refactor quietly reintroduced raw
    ``np.`` math in :mod:`repro.tensor` / :mod:`repro.nn` /
    :mod:`repro.optim`.
    """

    device = "cpu"

    def __init__(self, base: ArrayBackend | None = None) -> None:
        self.base = base if base is not None else NumpyBackend()
        self.counts: Counter[str] = Counter()

    @property
    def array_type(self) -> type:
        return self.base.array_type

    @property
    def base_device(self) -> str:
        return self.base.device

    def reset(self) -> None:
        self.counts.clear()


for _op in OP_SURFACE:
    setattr(InstrumentedBackend, _op, _counting_op(_op))
del _op


try:  # pragma: no cover - exercised only where cupy is installed
    import cupy as _cupy
    import cupyx as _cupyx
except ImportError:  # pragma: no cover - the usual CPU-only path
    _cupy = None
    _cupyx = None

if _cupy is not None:  # pragma: no cover - exercised only with a GPU

    @register_array_backend("cupy")
    class CupyBackend(ArrayBackend):
        """CuPy device-array backend (registered only when importable).

        The op surface mirrors :class:`NumpyBackend` one-for-one; the
        two deliberate differences are ``add_at`` (CuPy spells
        unbuffered scatter-add ``cupyx.scatter_add``) and
        ``random_uniform`` (draws on the host generator, then
        transfers, preserving mask bit-streams).
        """

        device = "cuda"
        array_type = _cupy.ndarray

        def asarray(self, value, dtype=None):
            return _cupy.asarray(value, dtype=dtype)

        def to_numpy(self, array):
            return _cupy.asnumpy(array)

        def zeros(self, shape, dtype=None):
            return _cupy.zeros(shape, dtype=dtype)

        def ones(self, shape, dtype=None):
            return _cupy.ones(shape, dtype=dtype)

        def zeros_like(self, array):
            return _cupy.zeros_like(array)

        def ones_like(self, array):
            return _cupy.ones_like(array)

        def arange(self, *args, **kwargs):
            return _cupy.arange(*args, **kwargs)

        def exp(self, array):
            return _cupy.exp(array)

        def log(self, array):
            return _cupy.log(array)

        def log1p(self, array):
            return _cupy.log1p(array)

        def sqrt(self, array):
            return _cupy.sqrt(array)

        def abs(self, array):
            return _cupy.abs(array)

        def sign(self, array):
            return _cupy.sign(array)

        def tanh(self, array):
            return _cupy.tanh(array)

        def maximum(self, a, b):
            return _cupy.maximum(a, b)

        def where(self, condition, a, b):
            return _cupy.where(condition, a, b)

        def clip(self, array, low, high):
            return _cupy.clip(array, low, high)

        def pad(self, array, pad_width):
            return _cupy.pad(array, pad_width)

        def expand_dims(self, array, axis):
            return _cupy.expand_dims(array, axis)

        def swapaxes(self, array, axis1, axis2):
            return _cupy.swapaxes(array, axis1, axis2)

        def broadcast_to(self, array, shape):
            return _cupy.broadcast_to(array, shape)

        def concatenate(self, arrays, axis=0):
            return _cupy.concatenate(arrays, axis=axis)

        def stack(self, arrays, axis=0):
            return _cupy.stack(arrays, axis=axis)

        def take(self, array, indices, axis=None):
            return _cupy.take(array, self.asarray(indices), axis=axis)

        def take_along_axis(self, array, indices, axis):
            return _cupy.take_along_axis(array, self.asarray(indices), axis)

        def put_along_axis(self, array, indices, values, axis):
            _cupy.put_along_axis(array, self.asarray(indices), values, axis)

        def add_at(self, array, indices, values):
            if isinstance(indices, tuple):
                indices = tuple(
                    self.asarray(i) if isinstance(i, np.ndarray) else i
                    for i in indices
                )
            else:
                indices = self.asarray(indices)
            _cupyx.scatter_add(array, indices, values)

        def einsum(self, subscripts, *operands):
            return _cupy.einsum(subscripts, *operands)

        def random_uniform(self, rng, shape):
            return _cupy.asarray(rng.random(shape))


# ----------------------------------------------------------------------
# Active-backend selection
# ----------------------------------------------------------------------
_ENV_VAR = "REPRO_ARRAY_BACKEND"
_ACTIVE: ArrayBackend | None = None
_INSTANCES: dict[str, ArrayBackend] = {}


def _instance(name: str) -> ArrayBackend:
    """One shared instance per registered name (counts survive lookups)."""
    key = str(name).lower()
    backend = _INSTANCES.get(key)
    if backend is None:
        backend = resolve_array_backend(key)()
        _INSTANCES[key] = backend
    return backend


def active_backend() -> ArrayBackend:
    """The process-global backend all tensor math dispatches through.

    Resolved lazily from ``REPRO_ARRAY_BACKEND`` (default ``numpy``) on
    first use; changed with :func:`set_array_backend` /
    :func:`use_array_backend`.
    """
    global _ACTIVE
    if _ACTIVE is None:
        _ACTIVE = _instance(os.environ.get(_ENV_VAR, "numpy"))
    return _ACTIVE


def set_array_backend(backend: "str | ArrayBackend | None") -> ArrayBackend:
    """Select the active backend by name or instance; returns it.

    ``None`` resets to the environment default (lazy re-resolution).
    Tensors created under the previous backend keep their arrays;
    selection only affects subsequently constructed tensors, so switch
    between training runs, not mid-graph.
    """
    global _ACTIVE
    if backend is None:
        _ACTIVE = None
        return active_backend()
    _ACTIVE = backend if isinstance(backend, ArrayBackend) else _instance(backend)
    return _ACTIVE


@contextlib.contextmanager
def use_array_backend(backend: "str | ArrayBackend"):
    """Context manager scoping :func:`set_array_backend` (tests)."""
    global _ACTIVE
    previous = _ACTIVE
    selected = set_array_backend(backend)
    try:
        yield selected
    finally:
        _ACTIVE = previous


def to_host(array) -> np.ndarray:
    """Bring a backend array to host memory as an ``np.ndarray``.

    Identity (no copy) for arrays already on the host — the numpy
    backend pays nothing — so the upload boundary
    (:meth:`repro.utils.layout.StateLayout.flatten_into`, module
    state dicts) lands bit-identical float32 rows regardless of where
    the math ran.
    """
    if isinstance(array, np.ndarray):
        return array
    get = getattr(array, "get", None)
    if get is not None:
        return get()
    return np.asarray(array)
