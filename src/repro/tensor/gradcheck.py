"""Numerical gradient verification.

``gradcheck`` compares analytic gradients produced by the autograd
engine against central finite differences. The test-suite runs it over
every op and layer, which is what gives us confidence that the NumPy
substrate faithfully replaces PyTorch for the paper's experiments.
"""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.tensor.backend import to_host
from repro.tensor.tensor import Tensor

__all__ = ["gradcheck"]


def gradcheck(
    fn: Callable[..., Tensor],
    inputs: Sequence[Tensor],
    eps: float = 1e-4,
    atol: float = 1e-3,
    rtol: float = 1e-2,
) -> bool:
    """Verify analytic gradients of ``fn`` against finite differences.

    Parameters
    ----------
    fn:
        Function mapping the given tensors to a (not necessarily scalar)
        ``Tensor``; non-scalar outputs are reduced with ``sum`` so a
        single backward pass covers every output element.
    inputs:
        Tensors to differentiate with respect to. They should be float64
        for meaningful tolerances (float32 finite differences are noisy).
    eps, atol, rtol:
        Finite-difference step and comparison tolerances.

    Returns
    -------
    bool
        True when all analytic gradients match; raises ``AssertionError``
        with a diagnostic message otherwise.
    """
    inputs = list(inputs)
    for t in inputs:
        if not isinstance(t, Tensor):
            raise TypeError("gradcheck inputs must be Tensors")
        t.requires_grad = True
        t.zero_grad()

    out = fn(*inputs)
    loss = out.sum() if out.size != 1 else out
    loss.backward()
    analytic = [None if t.grad is None else to_host(t.grad).copy() for t in inputs]

    for idx, t in enumerate(inputs):
        numeric = np.zeros(t.data.shape, dtype=np.float64)
        flat = t.data.reshape(-1)
        num_flat = numeric.reshape(-1)
        for i in range(flat.size):
            original = flat[i]
            flat[i] = original + eps
            plus = float(_eval_sum(fn, inputs))
            flat[i] = original - eps
            minus = float(_eval_sum(fn, inputs))
            flat[i] = original
            num_flat[i] = (plus - minus) / (2.0 * eps)
        got = analytic[idx]
        if got is None:
            got = np.zeros_like(numeric)
        if not np.allclose(got, numeric, atol=atol, rtol=rtol):
            worst = np.abs(np.asarray(got, dtype=np.float64) - numeric).max()
            raise AssertionError(
                f"gradcheck failed for input {idx} with shape {t.shape}: "
                f"max abs diff {worst:.3e} (atol={atol}, rtol={rtol})\n"
                f"analytic:\n{got}\nnumeric:\n{numeric}"
            )
    return True


def _eval_sum(fn: Callable[..., Tensor], inputs: Sequence[Tensor]) -> float:
    """Evaluate ``sum(fn(*inputs))`` without touching existing gradients."""
    out = fn(*inputs)
    return float(np.asarray(to_host(out.data), dtype=np.float64).sum())
