"""Differentiable functional layer primitives.

Everything here is a pure function from :class:`~repro.tensor.Tensor`
inputs to a ``Tensor`` output, with the backward pass registered on the
autograd graph. The :mod:`repro.nn` module layer classes are thin
stateful wrappers around these functions.

Convolutions use the classic im2col lowering: each sliding window is
unrolled into a column so the convolution becomes one large matrix
multiply. On small CIFAR-scale inputs this is the fastest pure-NumPy
strategy by a wide margin.

Array math dispatches through the active
:class:`~repro.tensor.backend.ArrayBackend`.  Two documented host-side
exceptions keep raw NumPy: :func:`im2col_indices` (window *index
metadata* — tiny integer arrays computed once per shape and converted
to backend arrays by the callers that index with them) and
:func:`one_hot` (a host-label helper whose output feeds host-side
pipelines, not the training hot path).
"""

from __future__ import annotations

import numpy as np

from repro.tensor.backend import active_backend
from repro.tensor.tensor import Tensor, as_tensor

__all__ = [
    "linear",
    "conv2d",
    "max_pool2d",
    "avg_pool2d",
    "global_avg_pool2d",
    "softmax",
    "log_softmax",
    "cross_entropy",
    "nll_loss",
    "mse_loss",
    "binary_cross_entropy_with_logits",
    "dropout",
    "embedding",
    "one_hot",
    "im2col_indices",
]


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """Affine map ``x @ weight.T + bias`` with PyTorch weight layout.

    ``weight`` has shape ``(out_features, in_features)`` so that model
    state-dicts match the layout the paper's PyTorch code would produce.
    """
    out = x.matmul(weight.transpose())
    if bias is not None:
        out = out + bias
    return out


# ----------------------------------------------------------------------
# Convolution via im2col
# ----------------------------------------------------------------------
def im2col_indices(
    x_shape: tuple[int, int, int, int], kh: int, kw: int, stride: int
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Return (k, i, j) fancy indices unrolling NCHW windows into columns.

    For input of shape ``(N, C, H, W)`` (already padded), the returned
    indices select an array of shape ``(C*kh*kw, out_h*out_w)`` per
    sample when used as ``x[:, k, i, j]``.

    Host NumPy on purpose: these are integer index *metadata*, a few KB
    computed per (shape, kernel, stride) combination; callers convert
    them to backend arrays before indexing device arrays with them.
    """
    _, c, h, w = x_shape
    out_h = (h - kh) // stride + 1
    out_w = (w - kw) // stride + 1

    i0 = np.repeat(np.arange(kh), kw)
    i0 = np.tile(i0, c)
    i1 = stride * np.repeat(np.arange(out_h), out_w)
    j0 = np.tile(np.arange(kw), kh * c)
    j1 = stride * np.tile(np.arange(out_w), out_h)

    i = i0.reshape(-1, 1) + i1.reshape(1, -1)
    j = j0.reshape(-1, 1) + j1.reshape(1, -1)
    k = np.repeat(np.arange(c), kh * kw).reshape(-1, 1)
    return k, i, j


def conv2d(
    x: Tensor,
    weight: Tensor,
    bias: Tensor | None = None,
    stride: int = 1,
    padding: int = 0,
) -> Tensor:
    """2-D cross-correlation over NCHW input.

    Parameters
    ----------
    x: ``(N, C_in, H, W)`` input.
    weight: ``(C_out, C_in, kH, kW)`` filters.
    bias: optional ``(C_out,)``.
    """
    bk = active_backend()
    x = as_tensor(x)
    weight = as_tensor(weight)
    n, c_in, h, w = x.shape
    c_out, c_in_w, kh, kw = weight.shape
    if c_in != c_in_w:
        raise ValueError(f"conv2d channel mismatch: input has {c_in}, weight expects {c_in_w}")

    if padding:
        x_pad = bk.pad(x.data, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
    else:
        x_pad = x.data
    hp, wp = x_pad.shape[2], x_pad.shape[3]
    out_h = (hp - kh) // stride + 1
    out_w = (wp - kw) // stride + 1

    k_idx, i_idx, j_idx = (
        bk.asarray(idx) for idx in im2col_indices(x_pad.shape, kh, kw, stride)
    )
    # cols: (N, C*kh*kw, out_h*out_w)
    cols = x_pad[:, k_idx, i_idx, j_idx]
    w_mat = weight.data.reshape(c_out, -1)  # (C_out, C*kh*kw)
    out = bk.einsum("ok,nkp->nop", w_mat, cols)
    out = out.reshape(n, c_out, out_h, out_w)
    if bias is not None:
        out = out + bias.data.reshape(1, c_out, 1, 1)

    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g) -> None:
        bk = active_backend()
        g = bk.asarray(g)  # (N, C_out, out_h, out_w)
        g_mat = g.reshape(n, c_out, -1)  # (N, C_out, P)
        if weight.requires_grad:
            grad_w = bk.einsum("nop,nkp->ok", g_mat, cols)
            weight._accumulate(grad_w.reshape(weight.shape))
        if bias is not None and bias.requires_grad:
            bias._accumulate(g.sum(axis=(0, 2, 3)))
        if x.requires_grad:
            grad_cols = bk.einsum("ok,nop->nkp", w_mat, g_mat)
            grad_pad = bk.zeros((n, c_in, hp, wp), dtype=x.data.dtype)
            bk.add_at(grad_pad, (slice(None), k_idx, i_idx, j_idx), grad_cols)
            if padding:
                grad_pad = grad_pad[:, :, padding:-padding, padding:-padding]
            x._accumulate(grad_pad)

    return Tensor._make(out, parents, backward, "conv2d")


def max_pool2d(x: Tensor, kernel_size: int = 2, stride: int | None = None) -> Tensor:
    """Max pooling over non-overlapping (or strided) windows, NCHW."""
    bk = active_backend()
    x = as_tensor(x)
    stride = stride or kernel_size
    n, c, h, w = x.shape
    out_h = (h - kernel_size) // stride + 1
    out_w = (w - kernel_size) // stride + 1

    if stride == kernel_size and h % kernel_size == 0 and w % kernel_size == 0:
        # Fast reshape-based path for the common exact-tiling case.
        reshaped = x.data.reshape(n, c, out_h, kernel_size, out_w, kernel_size)
        out = reshaped.max(axis=(3, 5))
        maxes = out[:, :, :, None, :, None]
        mask = (reshaped == maxes).astype(x.data.dtype)
        # Break ties: distribute gradient evenly among tied maxima.
        counts = mask.sum(axis=(3, 5), keepdims=True)

        def backward(g) -> None:
            g6 = active_backend().asarray(g)[:, :, :, None, :, None]
            grad = (mask / counts) * g6
            x._accumulate(grad.reshape(n, c, h, w))

        return Tensor._make(out, (x,), backward, "max_pool2d")

    # General strided path via im2col.
    k_idx, i_idx, j_idx = (
        bk.asarray(idx)
        for idx in im2col_indices((n, c, h, w), kernel_size, kernel_size, stride)
    )
    cols = x.data[:, k_idx, i_idx, j_idx]  # (N, C*k*k, P)
    cols = cols.reshape(n, c, kernel_size * kernel_size, -1)
    arg = cols.argmax(axis=2)  # (N, C, P)
    out = bk.take_along_axis(cols, arg[:, :, None, :], axis=2).squeeze(2)
    out = out.reshape(n, c, out_h, out_w)

    def backward_general(g) -> None:
        bk = active_backend()
        g = bk.asarray(g).reshape(n, c, -1)
        grad_cols = bk.zeros((n, c, kernel_size * kernel_size, g.shape[-1]), dtype=x.data.dtype)
        bk.put_along_axis(grad_cols, arg[:, :, None, :], g[:, :, None, :], axis=2)
        grad_cols = grad_cols.reshape(n, c * kernel_size * kernel_size, -1)
        grad = bk.zeros_like(x.data)
        bk.add_at(grad, (slice(None), k_idx, i_idx, j_idx), grad_cols)
        x._accumulate(grad)

    return Tensor._make(out, (x,), backward_general, "max_pool2d")


def avg_pool2d(x: Tensor, kernel_size: int = 2, stride: int | None = None) -> Tensor:
    """Average pooling over NCHW input (exact-tiling fast path)."""
    x = as_tensor(x)
    stride = stride or kernel_size
    n, c, h, w = x.shape
    if stride == kernel_size and h % kernel_size == 0 and w % kernel_size == 0:
        out_h, out_w = h // kernel_size, w // kernel_size
        reshaped = x.data.reshape(n, c, out_h, kernel_size, out_w, kernel_size)
        out = reshaped.mean(axis=(3, 5))
        scale = 1.0 / (kernel_size * kernel_size)

        def backward(g) -> None:
            bk = active_backend()
            g6 = bk.asarray(g)[:, :, :, None, :, None]
            grad = bk.broadcast_to(g6 * scale, (n, c, out_h, kernel_size, out_w, kernel_size))
            x._accumulate(grad.reshape(n, c, h, w))

        return Tensor._make(out, (x,), backward, "avg_pool2d")
    raise NotImplementedError("avg_pool2d only supports exact-tiling windows")


def global_avg_pool2d(x: Tensor) -> Tensor:
    """Mean over the spatial axes: ``(N, C, H, W) -> (N, C)``."""
    return x.mean(axis=(2, 3))


# ----------------------------------------------------------------------
# Softmax family
# ----------------------------------------------------------------------
def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable log-softmax with a fused backward pass."""
    bk = active_backend()
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    log_z = bk.log(bk.exp(shifted).sum(axis=axis, keepdims=True))
    out = shifted - log_z
    softmax_vals = bk.exp(out)

    def backward(g) -> None:
        g = active_backend().asarray(g)
        x._accumulate(g - softmax_vals * g.sum(axis=axis, keepdims=True))

    return Tensor._make(out, (x,), backward, "log_softmax")


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically-stable softmax with a fused backward pass."""
    bk = active_backend()
    x = as_tensor(x)
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    e = bk.exp(shifted)
    out = e / e.sum(axis=axis, keepdims=True)

    def backward(g) -> None:
        g = active_backend().asarray(g)
        inner = (g * out).sum(axis=axis, keepdims=True)
        x._accumulate(out * (g - inner))

    return Tensor._make(out, (x,), backward, "softmax")


def one_hot(labels: np.ndarray, num_classes: int, dtype=np.float32) -> np.ndarray:
    """Plain ndarray one-hot encoding of integer labels (host helper)."""
    labels = np.asarray(labels, dtype=np.int64)
    out = np.zeros((labels.size, num_classes), dtype=dtype)
    out[np.arange(labels.size), labels.reshape(-1)] = 1.0
    return out.reshape(labels.shape + (num_classes,))


def nll_loss(log_probs: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Negative log likelihood given ``log_softmax`` outputs.

    ``targets`` is an integer array (or integer Tensor) of shape ``(N,)``.
    """
    bk = active_backend()
    log_probs = as_tensor(log_probs)
    targets = bk.asarray(
        targets.data if isinstance(targets, Tensor) else targets, dtype=np.int64
    )
    n = log_probs.shape[0]
    rows = bk.arange(n)
    picked = log_probs.data[rows, targets]
    if reduction == "mean":
        value = -picked.mean()
        scale = 1.0 / n
    elif reduction == "sum":
        value = -picked.sum()
        scale = 1.0
    else:
        raise ValueError(f"unknown reduction {reduction!r}")

    def backward(g) -> None:
        bk = active_backend()
        g = float(bk.to_numpy(bk.asarray(g)))
        grad = bk.zeros_like(log_probs.data)
        grad[rows, targets] = -g * scale
        log_probs._accumulate(grad)

    return Tensor._make(
        bk.asarray(value, dtype=log_probs.dtype), (log_probs,), backward, "nll"
    )


def cross_entropy(logits: Tensor, targets, reduction: str = "mean") -> Tensor:
    """Softmax cross-entropy from raw logits (the paper's classification loss)."""
    return nll_loss(log_softmax(logits, axis=-1), targets, reduction=reduction)


def mse_loss(pred: Tensor, target, reduction: str = "mean") -> Tensor:
    """Mean squared error."""
    pred = as_tensor(pred)
    target = as_tensor(target)
    diff = pred - target.detach()
    sq = diff * diff
    return sq.mean() if reduction == "mean" else sq.sum()


def binary_cross_entropy_with_logits(logits: Tensor, targets) -> Tensor:
    """Stable BCE from logits: ``max(z,0) - z*y + log(1 + exp(-|z|))``."""
    bk = active_backend()
    logits = as_tensor(logits)
    z = logits.data
    y = bk.asarray(
        targets.data if isinstance(targets, Tensor) else targets, dtype=z.dtype
    )
    value = bk.maximum(z, 0) - z * y + bk.log1p(bk.exp(-bk.abs(z)))
    out_val = value.mean()
    # Stable sigmoid: exp only ever sees non-positive arguments.
    pos = z >= 0
    ez = bk.exp(bk.where(pos, -z, z))
    sig = bk.where(pos, 1.0 / (1.0 + ez), ez / (1.0 + ez))

    def backward(g) -> None:
        bk = active_backend()
        g = float(bk.to_numpy(bk.asarray(g)))
        logits._accumulate(g * (sig - y) / z.size)

    return Tensor._make(bk.asarray(out_val, dtype=z.dtype), (logits,), backward, "bce_logits")


def dropout(x: Tensor, p: float, rng: np.random.Generator, training: bool = True) -> Tensor:
    """Inverted dropout; identity when not training or p == 0."""
    if not training or p <= 0.0:
        return as_tensor(x)
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout probability must be in [0, 1), got {p}")
    bk = active_backend()
    x = as_tensor(x)
    keep = 1.0 - p
    mask = (bk.random_uniform(rng, x.shape) < keep).astype(x.data.dtype) / keep
    out = x.data * mask

    def backward(g) -> None:
        x._accumulate(active_backend().asarray(g) * mask)

    return Tensor._make(out, (x,), backward, "dropout")


def embedding(indices, weight: Tensor) -> Tensor:
    """Lookup rows of ``weight`` (``(vocab, dim)``) by integer ``indices``.

    ``indices`` may be an integer array or an integer :class:`Tensor`
    (layers normalise through :func:`~repro.tensor.tensor.as_tensor`, so
    indices flow through the dispatch layer like every other input).
    """
    bk = active_backend()
    weight = as_tensor(weight)
    idx = bk.asarray(
        indices.data if isinstance(indices, Tensor) else indices, dtype=np.int64
    )
    out = weight.data[idx]

    def backward(g) -> None:
        bk = active_backend()
        grad = bk.zeros_like(weight.data)
        bk.add_at(grad, idx.reshape(-1), bk.asarray(g).reshape(-1, weight.shape[1]))
        weight._accumulate(grad)

    return Tensor._make(out, (weight,), backward, "embedding")
