"""Autograd mode switches.

The engine records the computation graph only while gradient mode is
enabled. Evaluation code (test-accuracy passes, loss-landscape scans)
wraps itself in :func:`no_grad` to avoid the memory and time overhead of
graph construction — exactly mirroring the idiom the paper's PyTorch
implementation would use.
"""

from __future__ import annotations

import contextlib
import threading

__all__ = ["no_grad", "is_grad_enabled", "set_grad_enabled"]


class _GradMode(threading.local):
    """Thread-local gradient-mode flag (default: enabled)."""

    def __init__(self) -> None:
        super().__init__()
        self.enabled = True


_MODE = _GradMode()


def is_grad_enabled() -> bool:
    """Return True when operations record the autograd graph."""
    return _MODE.enabled


def set_grad_enabled(enabled: bool) -> None:
    """Globally enable or disable autograd graph recording."""
    _MODE.enabled = bool(enabled)


@contextlib.contextmanager
def no_grad():
    """Context manager that disables autograd graph recording.

    Examples
    --------
    >>> from repro.tensor import Tensor, no_grad
    >>> x = Tensor([1.0, 2.0], requires_grad=True)
    >>> with no_grad():
    ...     y = x * 3.0
    >>> y.requires_grad
    False
    """
    previous = _MODE.enabled
    _MODE.enabled = False
    try:
        yield
    finally:
        _MODE.enabled = previous
