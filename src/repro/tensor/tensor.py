"""The autograd ``Tensor`` type.

A ``Tensor`` wraps an array owned by the active
:class:`~repro.tensor.backend.ArrayBackend` (a ``numpy.ndarray`` on the
default backend) and, while gradient mode is enabled (see
:mod:`repro.tensor.autograd`), records enough information to run
reverse-mode automatic differentiation: the parent tensors and a
closure that maps the output gradient onto each parent's gradient.

Design notes
------------
* Gradients accumulate into ``tensor.grad`` (a raw backend array),
  mirroring the PyTorch convention the paper's implementation relies on
  (``zero_grad`` between steps, ``+=`` accumulation inside a step).
* Broadcasting is fully supported: ``_unbroadcast`` reduces an upstream
  gradient back onto a parent's shape by summing over broadcast axes.
* The graph is a DAG of ``Tensor`` nodes; ``backward`` runs a
  depth-first topological sort and applies each node's backward closure
  exactly once.
* All array *math* dispatches through :func:`active_backend`; only
  array **methods** (``.sum``, ``.reshape``, ``@`` …), which every
  backend's array type shares, are called directly.  On the ``numpy``
  backend every dispatched call is the identical NumPy call the
  pre-dispatch code made, so results are bit-identical to the seed
  direct-numpy path.
"""

from __future__ import annotations

import itertools
import math
from typing import Callable, Iterable, Sequence

import numpy as np

from repro.tensor.autograd import is_grad_enabled
from repro.tensor.backend import active_backend

__all__ = ["Tensor", "as_tensor"]

_DEFAULT_DTYPE = np.float32

ArrayLike = "Tensor | np.ndarray | float | int | list | tuple"


def _unbroadcast(grad, shape: tuple[int, ...]):
    """Sum ``grad`` over axes that were broadcast to reach ``grad.shape``.

    Broadcasting aligns shapes from the right and virtually repeats
    size-1 (or missing) axes; the adjoint of a repeat is a sum, so the
    gradient of a broadcast operand is the upstream gradient summed back
    to the operand's original shape.
    """
    if grad.shape == shape:
        return grad
    # Sum away leading axes that were added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over axes that were size-1 in the original shape.
    axes = tuple(i for i, n in enumerate(shape) if n == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


def _coerce(value):
    """Convert ``value`` to a backend array without copying when possible.

    Float/complex/integer arrays keep their dtype (integer tensors feed
    index ops such as :func:`repro.tensor.functional.embedding`); bool
    and everything else coerces to the default float dtype.  On the
    numpy backend an already-suitable ndarray passes through untouched.
    """
    bk = active_backend()
    if isinstance(value, (np.ndarray, bk.array_type)):
        if value.dtype.kind in "fcui":
            return bk.asarray(value, dtype=value.dtype)
        return bk.asarray(value, dtype=_DEFAULT_DTYPE)
    return bk.asarray(value, dtype=_DEFAULT_DTYPE)


class Tensor:
    """A backend-array tensor with reverse-mode automatic differentiation.

    Parameters
    ----------
    data:
        Anything convertible to a float array on the active backend.
    requires_grad:
        When True (and grad mode is on), operations involving this
        tensor extend the autograd graph and ``backward`` will populate
        ``self.grad``.

    Examples
    --------
    >>> x = Tensor([[1.0, 2.0]], requires_grad=True)
    >>> y = (x * x).sum()
    >>> y.backward()
    >>> x.grad
    array([[2., 4.]], dtype=float32)
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents", "_op")
    __array_priority__ = 100.0  # ensure ndarray + Tensor dispatches to Tensor

    def __init__(self, data, requires_grad: bool = False) -> None:
        self.data = _coerce(data)
        self.grad = None
        self.requires_grad: bool = bool(requires_grad)
        self._backward: Callable | None = None
        self._parents: tuple[Tensor, ...] = ()
        self._op: str = ""

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _make(
        data,
        parents: Sequence["Tensor"],
        backward: Callable,
        op: str,
    ) -> "Tensor":
        """Create an op output, wiring the graph if grad mode requires it."""
        requires = is_grad_enabled() and any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires)
        if requires:
            out._parents = tuple(parents)
            out._backward = backward
            out._op = op
        return out

    # ------------------------------------------------------------------
    # ndarray-ish properties
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def numpy(self) -> np.ndarray:
        """Return the underlying data as a host ndarray (no copy on the
        numpy backend; a device→host transfer elsewhere)."""
        return active_backend().to_numpy(self.data)

    def item(self) -> float:
        """Return the value of a single-element tensor as a Python float."""
        return float(self.data.reshape(-1)[0]) if self.data.size == 1 else self._item_err()

    def _item_err(self):
        raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")

    def detach(self) -> "Tensor":
        """Return a view of this tensor cut off from the autograd graph."""
        return Tensor(self.data, requires_grad=False)

    def copy(self) -> "Tensor":
        """Return a graph-detached deep copy."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        """Clear the accumulated gradient."""
        self.grad = None

    def __repr__(self) -> str:
        grad_part = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad_part})"

    def __len__(self) -> int:
        return len(self.data)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad=None) -> None:
        """Run reverse-mode autodiff from this tensor.

        Parameters
        ----------
        grad:
            Upstream gradient; defaults to ones (only valid for scalar
            outputs, matching the usual loss.backward() idiom).
        """
        bk = active_backend()
        if not self.requires_grad:
            raise RuntimeError("backward() called on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError(
                    "backward() without an explicit gradient is only supported for "
                    f"scalar outputs; this tensor has shape {self.shape}"
                )
            grad = bk.ones_like(self.data)
        grad = bk.asarray(grad, dtype=self.data.dtype)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    def _accumulate(self, grad) -> None:
        """Add ``grad`` into ``self.grad`` (lazily allocated)."""
        if not self.requires_grad:
            return
        grad = _unbroadcast(active_backend().asarray(grad), self.data.shape)
        if self.grad is None:
            self.grad = grad.astype(self.data.dtype, copy=True)
        else:
            self.grad = self.grad + grad.astype(self.data.dtype, copy=False)

    # ------------------------------------------------------------------
    # Elementwise arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data + other.data

        def backward(g) -> None:
            self._accumulate(g)
            other._accumulate(g)

        return Tensor._make(out_data, (self, other), backward, "add")

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data * other.data

        def backward(g) -> None:
            self._accumulate(g * other.data)
            other._accumulate(g * self.data)

        return Tensor._make(out_data, (self, other), backward, "mul")

    __rmul__ = __mul__

    def __sub__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data - other.data

        def backward(g) -> None:
            self._accumulate(g)
            other._accumulate(-g)

        return Tensor._make(out_data, (self, other), backward, "sub")

    def __rsub__(self, other) -> "Tensor":
        return as_tensor(other).__sub__(self)

    def __truediv__(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data / other.data

        def backward(g) -> None:
            self._accumulate(g / other.data)
            other._accumulate(-g * self.data / (other.data * other.data))

        return Tensor._make(out_data, (self, other), backward, "div")

    def __rtruediv__(self, other) -> "Tensor":
        return as_tensor(other).__truediv__(self)

    def __neg__(self) -> "Tensor":
        out_data = -self.data

        def backward(g) -> None:
            self._accumulate(-g)

        return Tensor._make(out_data, (self,), backward, "neg")

    def __pow__(self, exponent) -> "Tensor":
        if not isinstance(exponent, (int, float)):
            raise TypeError("Tensor ** only supports Python scalar exponents")
        out_data = self.data**exponent

        def backward(g) -> None:
            self._accumulate(g * exponent * self.data ** (exponent - 1))

        return Tensor._make(out_data, (self,), backward, f"pow{exponent}")

    # ------------------------------------------------------------------
    # Comparisons (graph-free, return plain Tensors of 0/1)
    # ------------------------------------------------------------------
    def __gt__(self, other) -> "Tensor":
        other = as_tensor(other)
        return Tensor((self.data > other.data).astype(self.data.dtype))

    def __lt__(self, other) -> "Tensor":
        other = as_tensor(other)
        return Tensor((self.data < other.data).astype(self.data.dtype))

    def __ge__(self, other) -> "Tensor":
        other = as_tensor(other)
        return Tensor((self.data >= other.data).astype(self.data.dtype))

    def __le__(self, other) -> "Tensor":
        other = as_tensor(other)
        return Tensor((self.data <= other.data).astype(self.data.dtype))

    # ------------------------------------------------------------------
    # Transcendental / unary ops
    # ------------------------------------------------------------------
    def exp(self) -> "Tensor":
        out_data = active_backend().exp(self.data)

        def backward(g) -> None:
            self._accumulate(g * out_data)

        return Tensor._make(out_data, (self,), backward, "exp")

    def log(self) -> "Tensor":
        out_data = active_backend().log(self.data)

        def backward(g) -> None:
            self._accumulate(g / self.data)

        return Tensor._make(out_data, (self,), backward, "log")

    def sqrt(self) -> "Tensor":
        out_data = active_backend().sqrt(self.data)

        def backward(g) -> None:
            self._accumulate(g * 0.5 / out_data)

        return Tensor._make(out_data, (self,), backward, "sqrt")

    def abs(self) -> "Tensor":
        bk = active_backend()
        out_data = bk.abs(self.data)

        def backward(g) -> None:
            self._accumulate(g * bk.sign(self.data))

        return Tensor._make(out_data, (self,), backward, "abs")

    def tanh(self) -> "Tensor":
        out_data = active_backend().tanh(self.data)

        def backward(g) -> None:
            self._accumulate(g * (1.0 - out_data * out_data))

        return Tensor._make(out_data, (self,), backward, "tanh")

    def sigmoid(self) -> "Tensor":
        bk = active_backend()
        # Numerically stable logistic: exp only ever sees non-positive values.
        out_data = bk.where(
            self.data >= 0,
            1.0 / (1.0 + bk.exp(-bk.clip(self.data, 0, None))),
            bk.exp(bk.clip(self.data, None, 0))
            / (1.0 + bk.exp(bk.clip(self.data, None, 0))),
        ).astype(self.data.dtype)

        def backward(g) -> None:
            self._accumulate(g * out_data * (1.0 - out_data))

        return Tensor._make(out_data, (self,), backward, "sigmoid")

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = active_backend().where(mask, self.data, 0.0).astype(self.data.dtype)

        def backward(g) -> None:
            self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward, "relu")

    def leaky_relu(self, negative_slope: float = 0.01) -> "Tensor":
        bk = active_backend()
        mask = self.data > 0
        out_data = bk.where(mask, self.data, negative_slope * self.data).astype(
            self.data.dtype
        )

        def backward(g) -> None:
            self._accumulate(g * bk.where(mask, 1.0, negative_slope))

        return Tensor._make(out_data, (self,), backward, "leaky_relu")

    def clip(self, low: float, high: float) -> "Tensor":
        out_data = active_backend().clip(self.data, low, high)
        mask = (self.data >= low) & (self.data <= high)

        def backward(g) -> None:
            self._accumulate(g * mask)

        return Tensor._make(out_data, (self,), backward, "clip")

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g) -> None:
            bk = active_backend()
            grad = bk.asarray(g)
            if axis is not None and not keepdims:
                axes = (axis,) if isinstance(axis, int) else tuple(axis)
                for ax in sorted(a % self.data.ndim for a in axes):
                    grad = bk.expand_dims(grad, ax)
            self._accumulate(bk.broadcast_to(grad, self.data.shape))

        return Tensor._make(out_data, (self,), backward, "sum")

    def mean(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = (axis,) if isinstance(axis, int) else tuple(axis)
            count = math.prod(self.data.shape[a] for a in axes)
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis: int | tuple[int, ...] | None = None, keepdims: bool = False) -> "Tensor":
        """Population variance (ddof=0), differentiable."""
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g) -> None:
            bk = active_backend()
            grad = bk.asarray(g)
            if axis is not None and not keepdims:
                grad = bk.expand_dims(grad, axis)
                maxes = self.data.max(axis=axis, keepdims=True)
            else:
                maxes = out_data if keepdims or axis is None else None
                if maxes is None or getattr(maxes, "ndim", 0) != self.data.ndim:
                    maxes = self.data.max(axis=axis, keepdims=True)
            mask = self.data == maxes
            # Split the gradient evenly across ties (subgradient choice).
            counts = mask.sum(axis=axis, keepdims=True) if axis is not None else mask.sum()
            self._accumulate(grad * mask / counts)

        return Tensor._make(out_data, (self,), backward, "max")

    def min(self, axis: int | None = None, keepdims: bool = False) -> "Tensor":
        return -(-self).max(axis=axis, keepdims=keepdims)

    # ------------------------------------------------------------------
    # Shape manipulation
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.data.shape

        def backward(g) -> None:
            self._accumulate(active_backend().asarray(g).reshape(original))

        return Tensor._make(out_data, (self,), backward, "reshape")

    def flatten(self, start_dim: int = 0) -> "Tensor":
        """Flatten dimensions from ``start_dim`` onwards into one axis."""
        lead = self.data.shape[:start_dim]
        return self.reshape(*lead, -1)

    def transpose(self, *axes) -> "Tensor":
        if len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        perm = axes if axes else tuple(reversed(range(self.data.ndim)))
        out_data = self.data.transpose(perm)
        inverse = tuple(sorted(range(len(perm)), key=perm.__getitem__))

        def backward(g) -> None:
            self._accumulate(active_backend().asarray(g).transpose(inverse))

        return Tensor._make(out_data, (self,), backward, "transpose")

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g) -> None:
            bk = active_backend()
            grad = bk.zeros_like(self.data)
            bk.add_at(grad, index, g)
            self._accumulate(grad)

        return Tensor._make(out_data, (self,), backward, "getitem")

    def pad2d(self, padding: int) -> "Tensor":
        """Zero-pad the last two (spatial) axes of an NCHW tensor."""
        if padding == 0:
            return self
        pad_width = [(0, 0)] * (self.data.ndim - 2) + [(padding, padding), (padding, padding)]
        out_data = active_backend().pad(self.data, pad_width)
        sl = (Ellipsis, slice(padding, -padding), slice(padding, -padding))

        def backward(g) -> None:
            self._accumulate(active_backend().asarray(g)[sl])

        return Tensor._make(out_data, (self,), backward, "pad2d")

    # ------------------------------------------------------------------
    # Linear algebra
    # ------------------------------------------------------------------
    def matmul(self, other) -> "Tensor":
        other = as_tensor(other)
        out_data = self.data @ other.data

        def backward(g) -> None:
            bk = active_backend()
            g = bk.asarray(g)
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # dot product -> scalar
                self._accumulate(g * b)
                other._accumulate(g * a)
                return
            if a.ndim == 1:  # (k,) @ (..., k, n)
                self._accumulate((bk.expand_dims(g, -2) @ bk.swapaxes(b, -1, -2)).reshape(a.shape))
                other._accumulate(bk.expand_dims(a, -1) @ bk.expand_dims(g, -2))
                return
            if b.ndim == 1:  # (..., m, k) @ (k,)
                self._accumulate(bk.expand_dims(g, -1) @ bk.expand_dims(b, -2))
                other._accumulate(_unbroadcast(bk.swapaxes(a, -1, -2) @ bk.expand_dims(g, -1), b.shape + (1,)).reshape(b.shape))
                return
            grad_a = g @ bk.swapaxes(b, -1, -2)
            grad_b = bk.swapaxes(a, -1, -2) @ g
            self._accumulate(_unbroadcast(grad_a, a.shape))
            other._accumulate(_unbroadcast(grad_b, b.shape))

        return Tensor._make(out_data, (self, other), backward, "matmul")

    def __matmul__(self, other) -> "Tensor":
        return self.matmul(other)

    def dot(self, other) -> "Tensor":
        return self.matmul(other)


def as_tensor(value) -> Tensor:
    """Coerce ``value`` to a :class:`Tensor` (no copy when already one)."""
    return value if isinstance(value, Tensor) else Tensor(value)


# ----------------------------------------------------------------------
# Free functions building on the Tensor graph
# ----------------------------------------------------------------------
def concatenate(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable concatenation along ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = active_backend().concatenate([t.data for t in tensors], axis=axis)
    sizes = [t.data.shape[axis] for t in tensors]
    offsets = list(itertools.accumulate(sizes, initial=0))

    def backward(g) -> None:
        g = active_backend().asarray(g)
        for t, start, stop in zip(tensors, offsets[:-1], offsets[1:]):
            sl = [slice(None)] * g.ndim
            sl[axis] = slice(start, stop)
            t._accumulate(g[tuple(sl)])

    return Tensor._make(out_data, tuple(tensors), backward, "concat")


def stack(tensors: Iterable[Tensor], axis: int = 0) -> Tensor:
    """Differentiable stack along a new ``axis``."""
    tensors = [as_tensor(t) for t in tensors]
    out_data = active_backend().stack([t.data for t in tensors], axis=axis)

    def backward(g) -> None:
        bk = active_backend()
        g = bk.asarray(g)
        for i, t in enumerate(tensors):
            t._accumulate(bk.take(g, i, axis=axis))

    return Tensor._make(out_data, tuple(tensors), backward, "stack")


def where(condition, a, b) -> Tensor:
    """Differentiable selection: ``condition`` is a plain boolean array."""
    bk = active_backend()
    a, b = as_tensor(a), as_tensor(b)
    cond = bk.asarray(condition, dtype=bool)
    out_data = bk.where(cond, a.data, b.data)

    def backward(g) -> None:
        bk = active_backend()
        g = bk.asarray(g)
        a._accumulate(bk.where(cond, g, 0.0))
        b._accumulate(bk.where(cond, 0.0, g))

    return Tensor._make(out_data, (a, b), backward, "where")
