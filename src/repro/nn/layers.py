"""Core trainable layers: Linear, Conv2d, Embedding, Dropout, Flatten.

No direct ``numpy`` here: weight initialisation goes through
:mod:`repro.nn.init` (the host-RNG boundary) and all math through the
:class:`~repro.tensor.Tensor` dispatch layer, so layers run unchanged
on every registered array backend.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, as_tensor
from repro.utils.rng import default_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["Linear", "Conv2d", "Embedding", "Dropout", "Flatten", "Identity"]


class Linear(Module):
    """Affine layer ``y = x W^T + b`` with PyTorch weight layout."""

    def __init__(
        self,
        in_features: int,
        out_features: int,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.kaiming_uniform(rng, (out_features, in_features)))
        if bias:
            bound = 1.0 / math.sqrt(in_features)
            self.bias = Parameter(init.uniform(rng, (out_features,), bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Conv2d(Module):
    """2-D convolution over NCHW input."""

    def __init__(
        self,
        in_channels: int,
        out_channels: int,
        kernel_size: int,
        stride: int = 1,
        padding: int = 0,
        bias: bool = True,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.in_channels = in_channels
        self.out_channels = out_channels
        self.kernel_size = kernel_size
        self.stride = stride
        self.padding = padding
        self.weight = Parameter(
            init.kaiming_uniform(rng, (out_channels, in_channels, kernel_size, kernel_size))
        )
        if bias:
            fan_in = in_channels * kernel_size * kernel_size
            bound = 1.0 / math.sqrt(fan_in)
            self.bias = Parameter(init.uniform(rng, (out_channels,), bound))
        else:
            self.bias = None

    def forward(self, x: Tensor) -> Tensor:
        return F.conv2d(x, self.weight, self.bias, stride=self.stride, padding=self.padding)

    def __repr__(self) -> str:
        return (
            f"Conv2d({self.in_channels}, {self.out_channels}, k={self.kernel_size}, "
            f"s={self.stride}, p={self.padding})"
        )


class Embedding(Module):
    """Token-index to dense-vector lookup table."""

    def __init__(
        self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(
            init.normal(rng, (num_embeddings, embedding_dim), std=0.1)
        )

    def forward(self, indices) -> Tensor:
        # Normalise like every other layer: indices become an integer
        # Tensor, so the lookup flows through the array-backend dispatch
        # instead of special-casing raw ndarrays.
        return F.embedding(as_tensor(indices), self.weight)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class Dropout(Module):
    """Inverted dropout; active only in training mode.

    The mask RNG is owned by the layer and reseeded via ``reseed`` so
    local training on a client is reproducible but not identical across
    rounds.
    """

    def __init__(self, p: float = 0.5, seed: int = 0) -> None:
        super().__init__()
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout probability must be in [0, 1), got {p}")
        self.p = p
        self._rng = default_rng(seed)

    def reseed(self, seed: int) -> None:
        self._rng = default_rng(seed)

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.p, self._rng, training=self.training)

    def __repr__(self) -> str:
        return f"Dropout(p={self.p})"


class Flatten(Module):
    """Flatten all axes after the batch axis."""

    def forward(self, x: Tensor) -> Tensor:
        return x.flatten(start_dim=1)


class Identity(Module):
    """Pass-through module (used for absent residual projections)."""

    def forward(self, x: Tensor) -> Tensor:
        return x
