"""Stateless activation modules."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor.tensor import Tensor

__all__ = ["ReLU", "LeakyReLU", "Tanh", "Sigmoid"]


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class LeakyReLU(Module):
    def __init__(self, negative_slope: float = 0.01) -> None:
        super().__init__()
        self.negative_slope = negative_slope

    def forward(self, x: Tensor) -> Tensor:
        return x.leaky_relu(self.negative_slope)


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()
