"""Normalisation layers.

``BatchNorm2d`` keeps running statistics as buffers, so FL aggregation
of state dicts averages them across clients exactly as FedAvg-style
systems do in practice. ``GroupNorm`` is provided as the batch-size
independent alternative commonly substituted in FL work; the ResNet/VGG
builders accept either.
"""

from __future__ import annotations

from repro.nn import init
from repro.nn.module import Module, Parameter
from repro.tensor.backend import to_host
from repro.tensor.tensor import Tensor

__all__ = ["BatchNorm2d", "GroupNorm", "LayerNorm"]


class BatchNorm2d(Module):
    """Batch normalisation over the channel axis of NCHW input."""

    def __init__(self, num_features: int, eps: float = 1e-5, momentum: float = 0.1) -> None:
        super().__init__()
        self.num_features = num_features
        self.eps = eps
        self.momentum = momentum
        self.weight = Parameter(init.ones(num_features))
        self.bias = Parameter(init.zeros(num_features))
        self.register_buffer("running_mean", init.zeros(num_features))
        self.register_buffer("running_var", init.ones(num_features))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"BatchNorm2d expects NCHW input, got shape {x.shape}")
        if self.training:
            mean = x.mean(axis=(0, 2, 3), keepdims=True)
            var = x.var(axis=(0, 2, 3), keepdims=True)
            # Track running statistics with detached batch moments
            # (buffers live on the host; ``to_host`` is free on numpy).
            m = self.momentum
            batch_mean = to_host(mean.data).reshape(-1)
            batch_var = to_host(var.data).reshape(-1)
            self._set_buffer("running_mean", (1 - m) * self.running_mean + m * batch_mean)
            self._set_buffer("running_var", (1 - m) * self.running_var + m * batch_var)
        else:
            mean = Tensor(self.running_mean.reshape(1, -1, 1, 1))
            var = Tensor(self.running_var.reshape(1, -1, 1, 1))
        x_hat = (x - mean) / (var + self.eps).sqrt()
        w = self.weight.reshape(1, self.num_features, 1, 1)
        b = self.bias.reshape(1, self.num_features, 1, 1)
        return x_hat * w + b

    def __repr__(self) -> str:
        return f"BatchNorm2d({self.num_features})"


class GroupNorm(Module):
    """Group normalisation (Wu & He 2018) over NCHW input."""

    def __init__(self, num_groups: int, num_channels: int, eps: float = 1e-5) -> None:
        super().__init__()
        if num_channels % num_groups != 0:
            raise ValueError(
                f"num_channels={num_channels} must be divisible by num_groups={num_groups}"
            )
        self.num_groups = num_groups
        self.num_channels = num_channels
        self.eps = eps
        self.weight = Parameter(init.ones(num_channels))
        self.bias = Parameter(init.zeros(num_channels))

    def forward(self, x: Tensor) -> Tensor:
        if x.ndim != 4:
            raise ValueError(f"GroupNorm expects NCHW input, got shape {x.shape}")
        n, c, h, w = x.shape
        g = self.num_groups
        grouped = x.reshape(n, g, c // g, h, w)
        mean = grouped.mean(axis=(2, 3, 4), keepdims=True)
        var = grouped.var(axis=(2, 3, 4), keepdims=True)
        x_hat = ((grouped - mean) / (var + self.eps).sqrt()).reshape(n, c, h, w)
        weight = self.weight.reshape(1, c, 1, 1)
        bias = self.bias.reshape(1, c, 1, 1)
        return x_hat * weight + bias

    def __repr__(self) -> str:
        return f"GroupNorm(groups={self.num_groups}, channels={self.num_channels})"


class LayerNorm(Module):
    """Layer normalisation over the last axis (used by the LSTM heads)."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5) -> None:
        super().__init__()
        self.normalized_shape = normalized_shape
        self.eps = eps
        self.weight = Parameter(init.ones(normalized_shape))
        self.bias = Parameter(init.zeros(normalized_shape))

    def forward(self, x: Tensor) -> Tensor:
        mean = x.mean(axis=-1, keepdims=True)
        var = x.var(axis=-1, keepdims=True)
        x_hat = (x - mean) / (var + self.eps).sqrt()
        return x_hat * self.weight + self.bias

    def __repr__(self) -> str:
        return f"LayerNorm({self.normalized_shape})"
