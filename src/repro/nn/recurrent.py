"""Recurrent layers: LSTMCell and a (possibly stacked) LSTM.

Used by the Shakespeare-like next-character and Sent140-like sentiment
tasks in the paper's Table II. Gates are computed with a single fused
matmul per step (PyTorch's ``[i, f, g, o]`` gate layout), so state
dicts have the familiar ``weight_ih/weight_hh/bias_ih/bias_hh`` keys.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from repro.nn import init
from repro.nn.module import Module, ModuleList, Parameter
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor, concatenate, stack
from repro.utils.rng import default_rng

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["LSTMCell", "LSTM"]


class LSTMCell(Module):
    """Single LSTM step with fused gate projections."""

    def __init__(
        self, input_size: int, hidden_size: int, rng: np.random.Generator | None = None
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        bound = 1.0 / math.sqrt(hidden_size)
        self.weight_ih = Parameter(init.uniform(rng, (4 * hidden_size, input_size), bound))
        self.weight_hh = Parameter(init.uniform(rng, (4 * hidden_size, hidden_size), bound))
        self.bias_ih = Parameter(init.uniform(rng, (4 * hidden_size,), bound))
        self.bias_hh = Parameter(init.uniform(rng, (4 * hidden_size,), bound))

    def forward(
        self, x: Tensor, state: tuple[Tensor, Tensor] | None = None
    ) -> tuple[Tensor, Tensor]:
        """One step: ``x`` is ``(N, input_size)``; returns ``(h, c)``."""
        n = x.shape[0]
        if state is None:
            h = Tensor(init.zeros((n, self.hidden_size)))
            c = Tensor(init.zeros((n, self.hidden_size)))
        else:
            h, c = state
        gates = F.linear(x, self.weight_ih, self.bias_ih) + F.linear(h, self.weight_hh, self.bias_hh)
        hs = self.hidden_size
        i = gates[:, 0 * hs : 1 * hs].sigmoid()
        f = gates[:, 1 * hs : 2 * hs].sigmoid()
        g = gates[:, 2 * hs : 3 * hs].tanh()
        o = gates[:, 3 * hs : 4 * hs].sigmoid()
        c_next = f * c + i * g
        h_next = o * c_next.tanh()
        return h_next, c_next

    def __repr__(self) -> str:
        return f"LSTMCell({self.input_size}, {self.hidden_size})"


class LSTM(Module):
    """Batch-first (``(N, T, D)``) LSTM with ``num_layers`` stacked cells."""

    def __init__(
        self,
        input_size: int,
        hidden_size: int,
        num_layers: int = 1,
        rng: np.random.Generator | None = None,
    ) -> None:
        super().__init__()
        rng = rng if rng is not None else default_rng()
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.num_layers = num_layers
        cells = []
        for layer in range(num_layers):
            in_size = input_size if layer == 0 else hidden_size
            cells.append(LSTMCell(in_size, hidden_size, rng=rng))
        self.cells = ModuleList(cells)

    def forward(self, x: Tensor) -> tuple[Tensor, tuple[Tensor, Tensor]]:
        """Run the full sequence.

        Returns
        -------
        outputs: ``(N, T, hidden_size)`` — top-layer hidden states.
        (h, c): final hidden/cell states of the top layer.
        """
        n, t, _ = x.shape
        layer_input = [x[:, step, :] for step in range(t)]
        h_final = c_final = None
        for cell in self.cells:
            state: tuple[Tensor, Tensor] | None = None
            outputs = []
            for step_x in layer_input:
                h, c = cell(step_x, state)
                state = (h, c)
                outputs.append(h)
            layer_input = outputs
            h_final, c_final = state  # type: ignore[misc]
        out = stack(layer_input, axis=1)
        return out, (h_final, c_final)

    def __repr__(self) -> str:
        return f"LSTM({self.input_size}, {self.hidden_size}, layers={self.num_layers})"
