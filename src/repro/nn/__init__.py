"""Neural-network layer library on top of :mod:`repro.tensor`.

Mirrors the subset of ``torch.nn`` the paper's models need: module
containers with state-dict (de)serialisation, dense/convolutional
layers, batch/group normalisation, recurrent cells, and classification
losses.
"""

from repro.nn.module import Module, Parameter, Sequential, ModuleList
from repro.nn.layers import Linear, Conv2d, Flatten, Dropout, Identity, Embedding
from repro.nn.activations import ReLU, LeakyReLU, Tanh, Sigmoid
from repro.nn.pooling import MaxPool2d, AvgPool2d, GlobalAvgPool2d
from repro.nn.norm import BatchNorm2d, GroupNorm, LayerNorm
from repro.nn.recurrent import LSTMCell, LSTM
from repro.nn.loss import CrossEntropyLoss, MSELoss, BCEWithLogitsLoss
from repro.nn import init

__all__ = [
    "Module",
    "Parameter",
    "Sequential",
    "ModuleList",
    "Linear",
    "Conv2d",
    "Flatten",
    "Dropout",
    "Identity",
    "Embedding",
    "ReLU",
    "LeakyReLU",
    "Tanh",
    "Sigmoid",
    "MaxPool2d",
    "AvgPool2d",
    "GlobalAvgPool2d",
    "BatchNorm2d",
    "GroupNorm",
    "LayerNorm",
    "LSTMCell",
    "LSTM",
    "CrossEntropyLoss",
    "MSELoss",
    "BCEWithLogitsLoss",
    "init",
]
