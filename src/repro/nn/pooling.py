"""Pooling modules wrapping the functional implementations."""

from __future__ import annotations

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

__all__ = ["MaxPool2d", "AvgPool2d", "GlobalAvgPool2d"]


class MaxPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.max_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"MaxPool2d(k={self.kernel_size}, s={self.stride})"


class AvgPool2d(Module):
    def __init__(self, kernel_size: int = 2, stride: int | None = None) -> None:
        super().__init__()
        self.kernel_size = kernel_size
        self.stride = stride or kernel_size

    def forward(self, x: Tensor) -> Tensor:
        return F.avg_pool2d(x, self.kernel_size, self.stride)

    def __repr__(self) -> str:
        return f"AvgPool2d(k={self.kernel_size}, s={self.stride})"


class GlobalAvgPool2d(Module):
    """Spatial mean pooling: ``(N, C, H, W) -> (N, C)``."""

    def forward(self, x: Tensor) -> Tensor:
        return F.global_avg_pool2d(x)
