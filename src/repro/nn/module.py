"""Module / Parameter containers.

``Module`` provides the PyTorch-style contract the FL layer depends on:

* recursive parameter discovery (``parameters`` / ``named_parameters``),
* state-dict export/import (the unit of communication in every FL
  method reproduced here),
* train/eval mode switching (batch-norm, dropout),
* ``zero_grad`` between optimiser steps.

This module is a documented **host-numpy boundary** (allowlisted by
``tools/check_numpy_imports.py``): state dicts and buffers are always
host ``np.ndarray`` mappings — the currency of aggregation, the pool
matrix and shared-memory upload rows — regardless of which array
backend executes the math.  ``state_dict`` brings parameters to the
host via :func:`~repro.tensor.backend.to_host` (free on numpy);
``load_state_dict`` places them back on the active backend's device.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterable, Iterator, Mapping

import numpy as np

from repro.tensor.backend import active_backend, to_host
from repro.tensor.tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A trainable tensor — always created with ``requires_grad=True``."""

    def __init__(self, data) -> None:
        super().__init__(data, requires_grad=True)

    def __repr__(self) -> str:
        return f"Parameter(shape={self.shape}, dtype={self.dtype})"


class Module:
    """Base class for all layers and models.

    Subclasses assign :class:`Parameter`, buffer arrays (via
    :meth:`register_buffer`) and child ``Module`` instances as ordinary
    attributes; registration happens automatically in ``__setattr__``.
    """

    def __init__(self) -> None:
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_buffers", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    # -- attribute registration ---------------------------------------
    def __setattr__(self, name: str, value) -> None:
        if isinstance(value, Parameter):
            self._parameters[name] = value
            self._buffers.pop(name, None)
            self._modules.pop(name, None)
        elif isinstance(value, Module):
            self._modules[name] = value
            self._parameters.pop(name, None)
            self._buffers.pop(name, None)
        else:
            self._parameters.pop(name, None)
            self._modules.pop(name, None)
        object.__setattr__(self, name, value)

    def register_buffer(self, name: str, value: np.ndarray) -> None:
        """Register a non-trainable array carried in the state dict
        (e.g. batch-norm running statistics)."""
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    def _set_buffer(self, name: str, value: np.ndarray) -> None:
        """Update a registered buffer in place of reference."""
        if name not in self._buffers:
            raise KeyError(f"buffer {name!r} is not registered")
        self._buffers[name] = np.asarray(value)
        object.__setattr__(self, name, self._buffers[name])

    # -- forward -------------------------------------------------------
    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # -- traversal -----------------------------------------------------
    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_modules(child_prefix)

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield (f"{prefix}.{name}" if prefix else name), param
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_parameters(child_prefix)

    def parameters(self) -> Iterator[Parameter]:
        for _, p in self.named_parameters():
            yield p

    def named_buffers(self, prefix: str = "") -> Iterator[tuple[str, np.ndarray]]:
        for name, buf in self._buffers.items():
            yield (f"{prefix}.{name}" if prefix else name), buf
        for name, child in self._modules.items():
            child_prefix = f"{prefix}.{name}" if prefix else name
            yield from child.named_buffers(child_prefix)

    def num_parameters(self) -> int:
        """Total number of trainable scalar parameters."""
        return sum(p.size for p in self.parameters())

    # -- training mode ---------------------------------------------------
    def train(self, mode: bool = True) -> "Module":
        object.__setattr__(self, "training", mode)
        for child in self._modules.values():
            child.train(mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    # -- state dicts -----------------------------------------------------
    def state_dict(self) -> dict[str, np.ndarray]:
        """Host-ndarray copy of all parameters and buffers, keyed by
        dotted path (device parameters are transferred)."""
        out: dict[str, np.ndarray] = {}
        for name, p in self.named_parameters():
            out[name] = to_host(p.data).copy()
        for name, b in self.named_buffers():
            out[name] = np.asarray(b).copy()
        return out

    def load_state_dict(self, state: Mapping[str, np.ndarray], strict: bool = True) -> None:
        """Load parameters/buffers from ``state`` (copies, never aliases)."""
        own_params = dict(self.named_parameters())
        own_buffer_owners: dict[str, tuple[Module, str]] = {}
        for mod_name, module in self.named_modules():
            for buf_name in module._buffers:
                full = f"{mod_name}.{buf_name}" if mod_name else buf_name
                own_buffer_owners[full] = (module, buf_name)

        missing = (set(own_params) | set(own_buffer_owners)) - set(state)
        unexpected = set(state) - (set(own_params) | set(own_buffer_owners))
        if strict and (missing or unexpected):
            raise KeyError(
                f"load_state_dict mismatch: missing={sorted(missing)} "
                f"unexpected={sorted(unexpected)}"
            )
        backend = active_backend()
        for name, value in state.items():
            if name in own_params:
                param = own_params[name]
                value = np.asarray(to_host(value), dtype=param.data.dtype)
                if value.shape != param.data.shape:
                    raise ValueError(
                        f"shape mismatch for {name!r}: "
                        f"model {param.data.shape} vs state {value.shape}"
                    )
                # asarray of the fresh copy is the copy itself on numpy
                # (never aliasing ``state``); device backends transfer.
                param.data = backend.asarray(value.copy())
            elif name in own_buffer_owners:
                module, buf_name = own_buffer_owners[name]
                module._set_buffer(buf_name, np.asarray(value).copy())

    def __repr__(self) -> str:
        children = ", ".join(self._modules)
        return f"{type(self).__name__}({children})"


class Sequential(Module):
    """Chain of modules applied in order."""

    def __init__(self, *modules: Module) -> None:
        super().__init__()
        for i, module in enumerate(modules):
            setattr(self, str(i), module)
        self._order = [str(i) for i in range(len(modules))]

    def forward(self, x):
        for name in self._order:
            x = self._modules[name](x)
        return x

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]


class ModuleList(Module):
    """List-like container that registers its items as submodules."""

    def __init__(self, modules: Iterable[Module] = ()) -> None:
        super().__init__()
        self._order: list[str] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        name = str(len(self._order))
        setattr(self, name, module)
        self._order.append(name)
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._modules[name] for name in self._order)

    def __len__(self) -> int:
        return len(self._order)

    def __getitem__(self, index: int) -> Module:
        return self._modules[self._order[index]]
