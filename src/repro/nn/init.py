"""Weight initialisation schemes (Kaiming / Xavier families).

All initialisers are pure functions from an explicit RNG to an ndarray,
so model construction is fully deterministic given a seed — a property
the FL experiments rely on: every method under comparison starts from
identical weights.

This module is a documented **host-numpy boundary** (allowlisted by
``tools/check_numpy_imports.py``): weights are always drawn on the host
``numpy.random.Generator`` so the bit-stream is identical on every
array backend; :class:`~repro.tensor.Tensor` construction moves them to
the active backend's device.
"""

from __future__ import annotations

import math

import numpy as np

__all__ = [
    "kaiming_uniform",
    "kaiming_normal",
    "xavier_uniform",
    "xavier_normal",
    "uniform",
    "normal",
    "zeros",
    "ones",
]


def _fan_in_out(shape: tuple[int, ...]) -> tuple[int, int]:
    """Compute (fan_in, fan_out) for dense and convolutional weights."""
    if len(shape) < 2:
        raise ValueError(f"fan computation requires >= 2 dims, got {shape}")
    receptive = int(np.prod(shape[2:])) if len(shape) > 2 else 1
    fan_in = shape[1] * receptive
    fan_out = shape[0] * receptive
    return fan_in, fan_out


def kaiming_uniform(rng: np.random.Generator, shape: tuple[int, ...], a: float = math.sqrt(5)) -> np.ndarray:
    """He-uniform init (PyTorch's default for Linear/Conv weights)."""
    fan_in, _ = _fan_in_out(shape)
    gain = math.sqrt(2.0 / (1 + a * a))
    bound = gain * math.sqrt(3.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def kaiming_normal(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """He-normal init for ReLU networks (used by the ResNet family)."""
    fan_in, _ = _fan_in_out(shape)
    std = math.sqrt(2.0 / fan_in)
    return (rng.standard_normal(shape) * std).astype(np.float32)


def xavier_uniform(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot-uniform init (used by the LSTM input projections)."""
    fan_in, fan_out = _fan_in_out(shape)
    bound = math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def xavier_normal(rng: np.random.Generator, shape: tuple[int, ...]) -> np.ndarray:
    """Glorot-normal init."""
    fan_in, fan_out = _fan_in_out(shape)
    std = math.sqrt(2.0 / (fan_in + fan_out))
    return (rng.standard_normal(shape) * std).astype(np.float32)


def uniform(rng: np.random.Generator, shape: tuple[int, ...], bound: float) -> np.ndarray:
    """Uniform init in ``[-bound, bound]`` (bias vectors)."""
    return rng.uniform(-bound, bound, size=shape).astype(np.float32)


def normal(rng: np.random.Generator, shape: tuple[int, ...], std: float = 1.0) -> np.ndarray:
    """Zero-mean normal init with standard deviation ``std`` (embeddings)."""
    return (rng.standard_normal(shape) * std).astype(np.float32)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=np.float32)


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=np.float32)
