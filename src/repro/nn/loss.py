"""Loss modules wrapping the functional losses."""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.nn.module import Module
from repro.tensor import functional as F
from repro.tensor.tensor import Tensor

if TYPE_CHECKING:  # pragma: no cover - typing only
    import numpy as np

__all__ = ["CrossEntropyLoss", "MSELoss", "BCEWithLogitsLoss"]


class CrossEntropyLoss(Module):
    """Softmax cross-entropy from logits — the paper's classification loss."""

    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.cross_entropy(logits, targets, reduction=self.reduction)


class MSELoss(Module):
    def __init__(self, reduction: str = "mean") -> None:
        super().__init__()
        self.reduction = reduction

    def forward(self, pred: Tensor, target) -> Tensor:
        return F.mse_loss(pred, target, reduction=self.reduction)


class BCEWithLogitsLoss(Module):
    def forward(self, logits: Tensor, targets: np.ndarray) -> Tensor:
        return F.binary_cross_entropy_with_logits(logits, targets)
