"""Benchmark-suite configuration.

Each bench runs its experiment harness exactly once via
``benchmark.pedantic`` (FL training is the measured quantity; repeated
timing runs would multiply minutes of compute for no statistical gain),
prints the paper-style table/series, and asserts the robust qualitative
shapes. Scale is controlled by ``REPRO_SCALE`` (default "quick").
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn, *args, **kwargs):
    """Run ``fn`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)


@pytest.fixture
def once(benchmark):
    """Fixture-ised single-shot benchmark runner."""

    def runner(fn, *args, **kwargs):
        return run_once(benchmark, fn, *args, **kwargs)

    return runner
