"""Table II — test-accuracy grid: 6 methods x models x datasets x
heterogeneity.

Row set via ``REPRO_TABLE2_ROWS`` (smoke | standard | grid); default
"standard" covers every axis of the paper's table at CPU scale.
"""

import os

import numpy as np

from repro.experiments.table2 import format_table2, run_table2


def test_table2_accuracy_grid(once):
    row_set = os.environ.get("REPRO_TABLE2_ROWS", "standard")
    result = once(run_table2, seed=0, row_set=row_set)
    print("\n" + format_table2(result))
    winners = result.winners()
    print(f"row winners: {winners}")
    print(f"fedcross win rate: {result.fedcross_win_rate():.2f}")

    grid = result.accuracy_grid()
    # every method learns above chance on every row; chance is derived
    # from the row's actual class count (dataset params may shrink it)
    default_classes = {
        "synth_cifar10": 10,
        "synth_cifar100": 100,
        "synth_femnist": 10,
        "synth_shakespeare": 30,
        "synth_sent140": 2,
    }
    for row, cells in zip(result.rows, grid):
        classes = row.dataset_params.get(
            "vocab_size", row.dataset_params.get("num_classes", default_classes[row.dataset])
        )
        chance = 1.0 / classes
        for method, acc in cells.items():
            assert acc > chance, f"{method} at chance on {row.label}"

    # FedCross is competitive in aggregate: its mean accuracy across the
    # grid is not materially below FedAvg's (the paper has it strictly
    # above; at quick scale we assert the direction with slack).
    mean_fc = np.mean([c["fedcross"] for c in grid])
    mean_fa = np.mean([c["fedavg"] for c in grid])
    assert mean_fc > mean_fa - 0.05
    # and it wins at least one row outright
    assert "fedcross" in winners
