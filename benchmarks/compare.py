"""Benchmark regression gate: fresh ``BENCH_*.json`` vs committed baseline.

CI runs the two smoke benchmarks with ``--json`` (producing
``BENCH_pool_engine.json`` and ``BENCH_client_execution.json``) and
then this script, which diffs the fresh artifacts against the
snapshots committed under ``benchmarks/baseline/`` and **fails on a
>25% hot-path regression** (``--threshold`` to tune).

What is compared — and what deliberately is not
-----------------------------------------------
Absolute seconds are machine-dependent (the committed baseline and the
CI runner are different hosts), and the thread/process *parallel*
speedups scale with core count, so gating on either would flake on
every runner change.  The gated metrics are the machine-robust
same-host **ratios** each benchmark computes internally:

``BENCH_pool_engine.json``
    ``pool_engine[].speedup`` (vectorized engine vs dict loops),
    ``baseline_aggregation[].agg_speedup`` (BLAS reduction vs dict
    loop), ``similarity[].speedup`` (Gram engine vs per-round
    recompute) — higher is better;
    ``sharded[].ratio`` (sharded round vs dense round on the same
    host) — lower is better (a rising ratio means shard-local access
    is getting more expensive than whole-matrix views);
    ``distributed[].ratio`` (distributed round over localhost shard
    hosts vs the sharded round) — lower is better (a rising ratio
    means the socket-RPC transport is getting more expensive per op);
    ``robust[].ratio`` (trimmed-mean round with a poisoned row vs the
    mean round on the same host) — lower is better (a rising ratio
    means Byzantine robustness is getting more expensive per round);
    ``out_of_core.peak_bytes / full_f64_bytes`` — lower is better (a
    rising ratio means whole-pool temporaries are creeping back).
``BENCH_client_execution.json``
    ``streaming[].ratio`` (streaming vs gathered collect on the same
    host, per backend) — lower is better; gated on **full-mode**
    artifacts only, since the smoke ratio compares two ~0.1 s
    micro-timings and is pure scheduler jitter on shared runners (the
    bench's own bar makes the same distinction).

Rows are matched by their key fields; rows or sections missing from
the *baseline* are reported as new coverage, never failed (so adding a
benchmark section does not require regenerating every snapshot —
refresh with ``--write-baseline`` when one is intended to move).

``--write-baseline`` does not blindly overwrite: when a snapshot
already exists, each gated metric keeps the **conservative envelope**
(the worst value seen — min for higher-is-better speedups, max for
lower-is-better ratios).  Re-running the benches a few times therefore
converges the baseline to a stable floor instead of a lucky sample,
which is what keeps a 25% gate meaningful on noisy shared runners.
Delete a snapshot file first to reset its floor intentionally.

Usage::

    PYTHONPATH=src python benchmarks/compare.py                  # gate CI
    PYTHONPATH=src python benchmarks/compare.py --threshold 0.4  # looser
    PYTHONPATH=src python benchmarks/compare.py --write-baseline # refresh
"""

from __future__ import annotations

import argparse
import json
import os
import sys

# (file, section, key fields, metric, direction, skip_smoke[, threshold])
# skip_smoke: the streaming ratio compares two ~0.1 s micro-timings in
# smoke mode — pure scheduler jitter on shared runners, which is why
# bench_client_execution.py itself only asserts its streaming bar on
# full runs.  The gate follows suit and only gates that section on
# full-mode artifacts.
# threshold: optional per-gate override of the global --threshold; the
# backend_dispatch gate uses a tight 5% bar against its parity-seeded
# baseline (ratio 1.0), because dispatch indirection should cost
# ~nothing — a 25% tolerance would hide a real hot-path regression.
GATES = [
    ("BENCH_pool_engine.json", "pool_engine", ("k",), "speedup", "higher", False),
    ("BENCH_pool_engine.json", "baseline_aggregation", ("k",), "agg_speedup", "higher", False),
    ("BENCH_pool_engine.json", "similarity", ("k",), "speedup", "higher", False),
    ("BENCH_pool_engine.json", "sharded", ("k", "shards"), "ratio", "lower", False),
    ("BENCH_pool_engine.json", "distributed", ("k", "hosts"), "ratio", "lower", False),
    ("BENCH_pool_engine.json", "robust", ("k",), "ratio", "lower", False),
    ("BENCH_client_execution.json", "streaming", ("k", "backend"), "ratio", "lower", True),
    ("BENCH_client_execution.json", "backend_dispatch", ("model",), "ratio", "lower", True, 0.05),
    ("BENCH_client_execution.json", "async_rounds", ("k", "staleness"), "ratio", "lower", True),
]
FILES = sorted({gate[0] for gate in GATES})


def _gate_fields(gate):
    """Unpack a GATES entry; the per-gate threshold defaults to None."""
    file, section, keys, metric, direction, skip_smoke = gate[:6]
    override = gate[6] if len(gate) > 6 else None
    return file, section, keys, metric, direction, skip_smoke, override


def _load(path: str):
    try:
        with open(path) as fh:
            return json.load(fh)
    except FileNotFoundError:
        return None


def _index(rows: list, keys: tuple) -> dict:
    return {tuple(row[k] for k in keys): row for row in rows}


def compare(fresh_dir: str, baseline_dir: str, threshold: float, emit=print):
    """Return (regressions, notes); regressions non-empty means fail."""
    regressions: list[str] = []
    notes: list[str] = []
    for path in FILES:
        fresh = _load(os.path.join(fresh_dir, path))
        base = _load(os.path.join(baseline_dir, path))
        if fresh is None:
            regressions.append(f"{path}: fresh artifact missing (did the bench run?)")
            continue
        if fresh.get("failures"):
            # The bench's own bars already failed; surface, don't mask.
            regressions.append(f"{path}: bench reported {fresh['failures']}")
        if base is None:
            notes.append(f"{path}: no committed baseline — skipping (seed one with --write-baseline)")
            continue
        for gate in GATES:
            file, section, keys, metric, direction, skip_smoke, override = _gate_fields(gate)
            if file != path:
                continue
            gate_threshold = threshold if override is None else override
            if skip_smoke and fresh.get("smoke"):
                notes.append(
                    f"{path}:{section}: smoke-mode artifact — ratio is "
                    "scheduler jitter at this scale, gated on full runs only"
                )
                continue
            fresh_rows = _index(fresh.get(section) or [], keys)
            base_rows = _index(base.get(section) or [], keys)
            if not base_rows:
                notes.append(f"{path}:{section}: new section, no baseline yet")
                continue
            for key, base_row in base_rows.items():
                fresh_row = fresh_rows.get(key)
                label = f"{path}:{section}{list(key)}:{metric}"
                if fresh_row is None:
                    notes.append(f"{label}: row absent from fresh run")
                    continue
                got, ref = float(fresh_row[metric]), float(base_row[metric])
                if direction == "higher":
                    bad = got < ref * (1.0 - gate_threshold)
                else:
                    bad = got > ref * (1.0 + gate_threshold)
                verdict = "REGRESSION" if bad else "ok"
                emit(f"  {label}: baseline {ref:.3f} -> fresh {got:.3f} [{verdict}]")
                if bad:
                    regressions.append(
                        f"{label}: {got:.3f} vs baseline {ref:.3f} "
                        f"(>{gate_threshold:.0%} {'drop' if direction == 'higher' else 'rise'})"
                    )
        # Out-of-core temp ratio: dict-shaped section, gated separately.
        if path == "BENCH_pool_engine.json":
            got_ooc, ref_ooc = fresh.get("out_of_core"), base.get("out_of_core")
            if got_ooc and ref_ooc:
                got = got_ooc["peak_bytes"] / max(1, got_ooc["full_f64_bytes"])
                ref = ref_ooc["peak_bytes"] / max(1, ref_ooc["full_f64_bytes"])
                bad = got > ref * (1.0 + threshold)
                emit(
                    f"  {path}:out_of_core:peak/full: baseline {ref:.3f} -> "
                    f"fresh {got:.3f} [{'REGRESSION' if bad else 'ok'}]"
                )
                if bad:
                    regressions.append(
                        f"{path}:out_of_core peak/full ratio {got:.3f} vs "
                        f"baseline {ref:.3f} (>{threshold:.0%} rise)"
                    )
    return regressions, notes


def _merge_conservative(path: str, fresh: dict, base: dict) -> dict:
    """Fold ``fresh`` into ``base`` keeping the worst gated value seen."""
    merged = dict(fresh)
    for gate in GATES:
        file, section, keys, metric, direction, _skip_smoke, _override = _gate_fields(gate)
        if file != path:
            continue
        base_rows = _index(base.get(section) or [], keys)
        merged_rows = []
        for row in fresh.get(section) or []:
            row = dict(row)
            prior = base_rows.get(tuple(row[k] for k in keys))
            if prior is not None:
                fold = min if direction == "higher" else max
                row[metric] = fold(float(row[metric]), float(prior[metric]))
            merged_rows.append(row)
        if merged_rows:
            merged[section] = merged_rows
    if path == "BENCH_pool_engine.json":
        got, ref = fresh.get("out_of_core"), base.get("out_of_core")
        if got and ref:
            got_ratio = got["peak_bytes"] / max(1, got["full_f64_bytes"])
            ref_ratio = ref["peak_bytes"] / max(1, ref["full_f64_bytes"])
            merged["out_of_core"] = dict(got if got_ratio >= ref_ratio else ref)
    return merged


def write_baseline(fresh_dir: str, baseline_dir: str, emit=print) -> int:
    os.makedirs(baseline_dir, exist_ok=True)
    missing = []
    for path in FILES:
        src = os.path.join(fresh_dir, path)
        fresh = _load(src)
        if fresh is None:
            missing.append(path)
            continue
        dst = os.path.join(baseline_dir, path)
        base = _load(dst)
        blob = fresh if base is None else _merge_conservative(path, fresh, base)
        with open(dst, "w") as fh:
            json.dump(blob, fh)
            fh.write("\n")
        emit(
            f"baseline {'seeded' if base is None else 'envelope-merged'}: {dst}"
        )
    if missing:
        print(f"missing fresh artifacts: {missing}", file=sys.stderr)
        return 1
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--fresh-dir", default=".", help="directory holding fresh BENCH_*.json"
    )
    parser.add_argument(
        "--baseline-dir",
        default=os.path.join(os.path.dirname(os.path.abspath(__file__)), "baseline"),
        help="committed baseline snapshot directory",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="relative regression tolerance on gated ratios (default 25%%)",
    )
    parser.add_argument(
        "--write-baseline",
        action="store_true",
        help="copy the fresh artifacts over the baseline snapshots and exit",
    )
    args = parser.parse_args(argv)
    if args.write_baseline:
        return write_baseline(args.fresh_dir, args.baseline_dir)
    regressions, notes = compare(args.fresh_dir, args.baseline_dir, args.threshold)
    for note in notes:
        print(f"  note: {note}")
    if regressions:
        print("BENCH REGRESSION: " + "; ".join(regressions), file=sys.stderr)
        return 1
    print("bench gate ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
