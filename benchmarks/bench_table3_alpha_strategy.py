"""Table III — alpha x collaborative-selection-strategy ablation."""

from repro.experiments.table3 import format_table3, run_table3


def test_table3_alpha_strategy(once):
    result = once(run_table3, seed=0, alphas=(0.5, 0.9, 0.99, 0.999))
    print("\n" + format_table3(result))
    print(f"best strategy per alpha: {result.best_strategy_per_alpha()}")

    # Paper: alpha = 0.999 collapses for every strategy relative to the
    # mid-range alphas (less knowledge exchanged than local drift).
    for strategy in result.strategies:
        mid = max(result.accuracy[(0.9, strategy)], result.accuracy[(0.99, strategy)])
        assert result.accuracy[(0.999, strategy)] < mid + 0.02

    # Paper: highest-similarity is the weakest strategy overall.
    means = {s: result.strategy_mean(s) for s in result.strategies}
    assert means["highest"] <= max(means["lowest"], means["in_order"]) + 0.02
