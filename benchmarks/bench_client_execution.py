"""Round-collect wall clock: serial vs thread vs process execution.

The ``collect`` phase trains the round's K active clients; PR 3's
execution engine makes it parallel.  This benchmark times one FedCross
round-collect on the seed CNN for each execution backend at K ∈ {10,
50} (``--smoke``: one small K) and verifies the engine's core guarantee
on the same workload: **bit-identical training histories and final pool
matrices across all three backends**.

The asserted bar — ``process`` ≥ 3× faster than ``serial`` at the
largest K — only applies on hosts with ≥ 4 CPU cores (the speedup is
physically impossible on fewer); on smaller hosts the bar is reported
as skipped so CI boxes of any shape can run the determinism check.

Run directly (not collected by the tier-1 pytest command)::

    PYTHONPATH=src python benchmarks/bench_client_execution.py           # full
    PYTHONPATH=src python benchmarks/bench_client_execution.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_client_execution.py --json    # trend

``--json`` prints one machine-readable object *and* writes it to
``BENCH_client_execution.json`` (see ``--json-out``), so every CI run
leaves a perf artifact and the trajectory is recorded per PR.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.fl.config import FLConfig
from repro.fl.simulation import FLSimulation
from repro.models.registry import build_model
from repro.optim import SGD
from repro.tensor import Tensor
from repro.tensor.functional import cross_entropy, im2col_indices

BACKENDS = ("serial", "thread", "process")


def make_config(
    k: int, input_size: int, execution: str, rounds: int = 2, streaming: bool = True
) -> FLConfig:
    return FLConfig(
        method="fedcross",
        dataset="synth_cifar10",
        model="cnn",
        heterogeneity=0.5,
        num_clients=k,
        participation=1.0,
        rounds=rounds,
        local_epochs=1,
        batch_size=20,
        eval_every=rounds,
        execution=execution,
        streaming=streaming,
        seed=0,
        dataset_params={
            "samples_per_client": 60,
            "num_test": 40,
            "image_shape": (3, input_size, input_size),
        },
        method_params={"alpha": 0.99},
    )


def time_collect(config: FLConfig, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one round-collect."""
    sim = FLSimulation(config)
    server = sim.server
    active = server.select_cohort()
    # Warm-up: spins up worker pools / shared buffers and faults in the
    # first dispatch, so the timed runs measure steady-state rounds.
    server.collect(active, server.dispatch(active))
    best = float("inf")
    for _ in range(repeats):
        plans = server.dispatch(active)
        start = time.perf_counter()
        server.collect(active, plans)
        best = min(best, time.perf_counter() - start)
    server.executor.close()
    return best


def run_streaming_overlap(k: int, input_size: int, repeats: int, cores: int,
                          smoke: bool, max_ratio: float, emit):
    """Streaming vs gathered collect per backend (ISSUE 4 overlap).

    Streaming consumes uploads as legs land, overlapping the server's
    packing and FedCross's incremental Gram updates with still-running
    legs; gathered is the reference schedule that defers all of it to
    the end.  The asserted bar — streaming wall-clock ≤ gathered (with
    ``max_ratio`` noise headroom) on the **process** backend — only
    applies on full runs with ≥ 2 cores: with a single core there is
    nothing to overlap with, and smoke runs on shared CI boxes report
    the ratio without gating on scheduler jitter.
    """
    emit(f"{'K':>4} {'backend':>8} {'gathered (s)':>13} {'streaming (s)':>14} "
         f"{'ratio':>7}")
    rows = []
    failures = []
    for execution in BACKENDS:
        gathered = time_collect(
            make_config(k, input_size, execution, streaming=False), repeats
        )
        streaming = time_collect(
            make_config(k, input_size, execution, streaming=True), repeats
        )
        ratio = streaming / gathered
        emit(f"{k:>4} {execution:>8} {gathered:>13.3f} {streaming:>14.3f} "
             f"{ratio:>6.2f}x")
        rows.append(
            {
                "k": k,
                "backend": execution,
                "gathered_s": gathered,
                "streaming_s": streaming,
                "ratio": ratio,
            }
        )
        if execution == "process" and not smoke:
            if cores >= 2:
                if ratio > max_ratio:
                    failures.append(
                        f"K={k}: streaming collect {ratio:.2f}x gathered on the "
                        f"process backend (bar: <= {max_ratio}x)"
                    )
            else:
                emit("  (streaming bar skipped: single core — no legs to "
                     "overlap with)")
    return rows, failures


def histories_bit_identical(k: int, input_size: int, emit) -> bool:
    """Two full rounds per backend and schedule: records + pool must
    match the gathered-serial reference exactly."""
    variants = {"serial-gathered": ("serial", False)}
    for execution in BACKENDS:
        variants[f"{execution}-streaming"] = (execution, True)
    results = {}
    for label, (execution, streaming) in variants.items():
        sim = FLSimulation(make_config(k, input_size, execution, streaming=streaming))
        result = sim.run()
        results[label] = (result, np.array(sim.server.pool.matrix, copy=True))
    ref_result, ref_pool = results["serial-gathered"]
    ok = True
    for label, (got_result, got_pool) in results.items():
        if label == "serial-gathered":
            continue
        same = all(
            a.accuracy == b.accuracy
            and a.loss == b.loss
            and a.train_loss == b.train_loss
            for a, b in zip(ref_result.history.records, got_result.history.records)
        ) and np.array_equal(ref_pool, got_pool)
        emit(f"  determinism serial-gathered vs {label:>17} @ K={k}: "
             f"{'bit-identical' if same else 'DIVERGED'}")
        ok = ok and same
    return ok


# ----------------------------------------------------------------------
# Async bounded-staleness rounds vs sync under seeded stragglers (ISSUE 10)
# ----------------------------------------------------------------------
def make_async_config(
    k: int, rounds: int, round_mode: str, staleness: int
) -> FLConfig:
    """Cheap-compute FedCross fit for the round-schedule comparison.

    The MLP keeps per-leg compute small so the injected straggler
    sleeps dominate wall clock — the regime the async schedule exists
    for — and ``workers=k`` lets every leg of a round run concurrently
    on the thread backend (the straggler cost is then purely the
    schedule's, not a worker-queue artifact).
    """
    return FLConfig(
        method="fedcross",
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.5,
        num_clients=k,
        participation=1.0,
        rounds=rounds,
        local_epochs=1,
        batch_size=16,
        eval_every=rounds,
        execution="thread",
        workers=k,
        streaming=True,
        seed=0,
        round_mode=round_mode,
        max_staleness=staleness,
        dataset_params={"samples_per_client": 20, "num_test": 20},
        method_params={"alpha": 0.99},
    )


def _attach_stragglers(sim, base_delay: float, fault_seed: int) -> None:
    """Seeded wall-clock stragglers: PR 8's fault model decides *which*
    legs are slow (slow_prob=0.3, slow_factor=4), a ``DelaySpec`` makes
    them slow for real.  Keyed on (round, client) through the seeded
    stream, so the sync and async fits hit identical delay patterns.

    The fault seed is chosen so stragglers hit *different* clients in
    *different* rounds — the regime where the schedules diverge.  Sync
    pays the sum of per-round maxima (every round barriers on its
    slowest leg); async pays at best the max of per-client sums (each
    client proceeds at its own pace within the staleness window).  A
    seed that piles every slow leg into one round makes the two bounds
    equal and measures nothing.
    """
    from repro.faults import ClientPopulation
    from repro.faults.inject import DelaySpec

    server = sim.server
    pop = ClientPopulation(
        {"slow_prob": 0.3, "slow_factor": 4.0},
        seed=fault_seed,
        num_clients=server.config.num_clients,
    )
    original = server.dispatch

    def dispatch(active):
        plans = original(active)
        for client, plan in zip(active, plans):
            speed = pop.leg_fault(server.round_idx, client.client_id).speed
            if speed > 1.0:
                plan.loss_hook = DelaySpec(
                    seconds=(speed - 1.0) * base_delay, once=True
                )
        return plans

    server.dispatch = dispatch


def _time_fit(config: FLConfig, base_delay: float, fault_seed: int,
              repeats: int):
    """Best-of-``repeats`` full-fit wall time plus the last run's history."""
    best, result = float("inf"), None
    for _ in range(repeats):
        sim = FLSimulation(config)
        _attach_stragglers(sim, base_delay, fault_seed)
        start = time.perf_counter()
        result = sim.run()
        best = min(best, time.perf_counter() - start)
    return best, result


def run_async_rounds(repeats: int, cores: int, smoke: bool,
                     max_async_ratio: float, emit):
    """Async bounded-staleness schedule vs sync under seeded stragglers.

    Whole fits (not single rounds): the async win is *cross-round* —
    round t+1 legs start while round t stragglers sleep — so only a
    multi-round wall clock can see it.  The asserted bar, async
    wall-clock ≤ ``max_async_ratio`` × sync at S>0, applies to full
    runs on ≥ 4 cores (on fewer cores training serialises behind the
    GIL and the overlap is partly an artifact of sleep scheduling;
    smoke timings are jitter-bound).  Wasted speculation is reported
    alongside: the fraction of speculative blends the completion
    reconcile had to redo or overwrite (``wasted_frac``).
    """
    if smoke:
        k, rounds, base_delay, fault_seed = 4, 4, 0.05, 7
    else:
        k, rounds, base_delay, fault_seed = 8, 4, 0.15, 11
    sync_s, _ = _time_fit(
        make_async_config(k, rounds, "sync", 0), base_delay, fault_seed,
        repeats,
    )
    emit(f"{'K':>4} {'mode':>10} {'S':>3} {'fit (s)':>9} {'ratio':>7} "
         f"{'spec':>6} {'wasted':>7} {'stale':>6}")
    emit(f"{k:>4} {'sync':>10} {'-':>3} {sync_s:>9.3f} {'1.00x':>7} "
         f"{'-':>6} {'-':>7} {'-':>6}")
    rows = []
    failures = []
    for staleness in (1, 2):
        async_s, result = _time_fit(
            make_async_config(k, rounds, "async", staleness),
            base_delay, fault_seed, repeats,
        )
        infos = [
            r.extras.get("async", {}) for r in result.history.records
        ]
        spec = sum(i.get("speculative_blends", 0) for i in infos)
        redone = sum(
            i.get("speculative_reblends", 0) + i.get("reconcile_fixes", 0)
            for i in infos
        )
        stale = sum(i.get("stale_uploads", 0) for i in infos)
        wasted = redone / max(1, spec)
        ratio = async_s / sync_s
        emit(f"{k:>4} {'async':>10} {staleness:>3} {async_s:>9.3f} "
             f"{ratio:>6.2f}x {spec:>6} {wasted:>6.2f} {stale:>6}")
        rows.append(
            {
                "k": k,
                "staleness": staleness,
                "sync_s": sync_s,
                "async_s": async_s,
                "ratio": ratio,
                "speculative_blends": spec,
                "wasted_frac": wasted,
                "stale_uploads": stale,
            }
        )
        if not smoke:
            if cores >= 4:
                if ratio > max_async_ratio:
                    failures.append(
                        f"S={staleness}: async fit {ratio:.2f}x sync under "
                        f"seeded stragglers (bar: <= {max_async_ratio}x)"
                    )
            else:
                emit(f"  (async bar skipped: {cores} cores < 4 — training "
                     "serialises, overlap is scheduling noise)")
    return rows, failures


# ----------------------------------------------------------------------
# Array-backend dispatch overhead (ISSUE 6)
# ----------------------------------------------------------------------
def _direct_cnn_step(params, bufs, x, y, lr, momentum):
    """Seed-direct raw-numpy replica of one FedAvgCNN client step.

    Reproduces the exact pre-dispatch op sequence (same im2col indices,
    same ``einsum(..., optimize=True)`` calls, same reshape-based pool
    fast path, same float32 rounding points), so its updated parameters
    are **bit-identical** to the dispatched tensor stack's — verified by
    :func:`run_backend_dispatch` before any timing is trusted — and its
    wall clock is the true zero-dispatch baseline.
    """

    def conv_fwd(inp, w, b, padding):
        n = inp.shape[0]
        c_out, _, kh, kw = w.shape
        x_pad = np.pad(inp, ((0, 0), (0, 0), (padding, padding), (padding, padding)))
        k_idx, i_idx, j_idx = im2col_indices(x_pad.shape, kh, kw, 1)
        cols = x_pad[:, k_idx, i_idx, j_idx]
        w_mat = w.reshape(c_out, -1)
        out = np.einsum("ok,nkp->nop", w_mat, cols, optimize=True)
        out_h = x_pad.shape[2] - kh + 1
        out_w = x_pad.shape[3] - kw + 1
        out = out.reshape(n, c_out, out_h, out_w) + b.reshape(1, c_out, 1, 1)
        return out, (x_pad.shape, cols, w_mat, (k_idx, i_idx, j_idx), padding)

    def conv_bwd(g, w, cache):
        pad_shape, cols, w_mat, (k_idx, i_idx, j_idx), padding = cache
        n, c_out = g.shape[0], g.shape[1]
        g_mat = g.reshape(n, c_out, -1)
        grad_w = np.einsum("nop,nkp->ok", g_mat, cols, optimize=True).reshape(w.shape)
        grad_b = g.sum(axis=(0, 2, 3))
        grad_cols = np.einsum("ok,nop->nkp", w_mat, g_mat, optimize=True)
        grad_pad = np.zeros(pad_shape, dtype=g.dtype)
        np.add.at(grad_pad, (slice(None), k_idx, i_idx, j_idx), grad_cols)
        if padding:
            grad_pad = grad_pad[:, :, padding:-padding, padding:-padding]
        return grad_pad, grad_w, grad_b

    def pool_fwd(inp):
        n, c, h, w = inp.shape
        r = inp.reshape(n, c, h // 2, 2, w // 2, 2)
        out = r.max(axis=(3, 5))
        mask = (r == out[:, :, :, None, :, None]).astype(inp.dtype)
        counts = mask.sum(axis=(3, 5), keepdims=True)
        return out, (mask, counts, (n, c, h, w))

    def pool_bwd(g, cache):
        mask, counts, shape = cache
        return ((mask / counts) * g[:, :, :, None, :, None]).reshape(shape)

    def relu_fwd(pre):
        mask = pre > 0
        return np.where(mask, pre, 0.0).astype(pre.dtype), mask

    nb = x.shape[0]
    w1, b1, w2, b2, wf1, bf1, wf2, bf2 = params

    # forward
    c1, c1_cache = conv_fwd(x, w1, b1, padding=2)
    r1, r1_mask = relu_fwd(c1)
    p1, p1_cache = pool_fwd(r1)
    c2, c2_cache = conv_fwd(p1, w2, b2, padding=2)
    r2, r2_mask = relu_fwd(c2)
    p2, p2_cache = pool_fwd(r2)
    flat = p2.reshape(nb, -1)
    h1 = flat @ wf1.transpose((1, 0)) + bf1
    a1, a1_mask = relu_fwd(h1)
    logits = a1 @ wf2.transpose((1, 0)) + bf2

    # loss (log-softmax + mean NLL)
    shifted = logits - logits.max(axis=-1, keepdims=True)
    log_z = np.log(np.exp(shifted).sum(axis=-1, keepdims=True))
    log_probs = shifted - log_z
    softmax_vals = np.exp(log_probs)
    rows = np.arange(nb)
    loss = -log_probs[rows, y].mean()

    # backward
    g_lp = np.zeros_like(log_probs)
    g_lp[rows, y] = -1.0 * (1.0 / nb)
    g_logits = (g_lp - softmax_vals * g_lp.sum(axis=-1, keepdims=True)).astype(
        logits.dtype, copy=True
    )
    g_bf2 = g_logits.sum(axis=0)
    g_wf2 = (a1.transpose((1, 0)) @ g_logits).transpose((1, 0))
    g_a1 = g_logits @ wf2
    g_h1 = g_a1 * a1_mask
    g_bf1 = g_h1.sum(axis=0)
    g_wf1 = (flat.transpose((1, 0)) @ g_h1).transpose((1, 0))
    g_flat = g_h1 @ wf1
    g_p2 = g_flat.reshape(p2.shape)
    g_r2 = pool_bwd(g_p2, p2_cache)
    g_c2 = g_r2 * r2_mask
    g_p1, g_w2, g_b2 = conv_bwd(g_c2, w2, c2_cache)
    g_r1 = pool_bwd(g_p1, p1_cache)
    g_c1 = g_r1 * r1_mask
    _, g_w1, g_b1 = conv_bwd(g_c1, w1, c1_cache)

    # SGD with momentum (the trainer's update, dtype-stable)
    grads = [g_w1, g_b1, g_w2, g_b2, g_wf1, g_bf1, g_wf2, g_bf2]
    for idx, (p, g) in enumerate(zip(params, grads)):
        g = g.astype(p.dtype, copy=True)
        if momentum:
            buf = bufs[idx]
            buf = g.copy() if buf is None else momentum * buf + g
            bufs[idx] = buf
            g = buf
        params[idx] = np.asarray(p - lr * g, dtype=p.dtype)
    return float(loss)


_PARAM_KEYS = (
    "conv1.weight", "conv1.bias", "conv2.weight", "conv2.bias",
    "fc1.weight", "fc1.bias", "fc2.weight", "fc2.bias",
)


def run_backend_dispatch(smoke: bool, repeats: int, max_overhead: float, emit):
    """Seed-direct vs dispatched-numpy client step (ISSUE 6 tentpole).

    Times one FedAvgCNN forward/loss/backward/SGD step through the
    array-backend dispatch layer (the only path since the refactor)
    against :func:`_direct_cnn_step`, a raw-numpy replica of the seed's
    pre-dispatch op sequence.  Bit-identical parameter updates between
    the two legs are asserted first; the dispatch overhead bar
    (``ratio <= 1 + max_overhead``) gates full runs only — a smoke step
    is a sub-millisecond micro-timing, pure jitter on shared runners.
    """
    if smoke:
        model_name, input_size, batch, inner = "cnn_s", 8, 16, 10
    else:
        model_name, input_size, batch, inner = "cnn", 16, 50, 5
    lr, momentum = 0.01, 0.5

    def fresh_legs():
        model = build_model(
            model_name, seed=0, input_shape=(3, input_size, input_size), num_classes=10
        )
        state = model.state_dict()
        params = [state[k].copy() for k in _PARAM_KEYS]
        return model, params

    rng = np.random.default_rng(42)
    x = rng.standard_normal((batch, 3, input_size, input_size)).astype(np.float32)
    y = rng.integers(0, 10, size=batch)

    def dispatched_step(model, optimizer):
        optimizer.zero_grad()
        loss = cross_entropy(model(Tensor(x)), y)
        loss.backward()
        optimizer.step()
        return float(loss.numpy())

    # Bit-identity: a few steps from shared init must land on the same
    # parameters — otherwise the "direct" leg times a different program.
    model, params = fresh_legs()
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum)
    bufs = [None] * len(params)
    identical = True
    for _ in range(3):
        dispatched_step(model, optimizer)
        _direct_cnn_step(params, bufs, x, y, lr, momentum)
    state = model.state_dict()
    for key, direct_p in zip(_PARAM_KEYS, params):
        if not np.array_equal(state[key], direct_p):
            identical = False
    failures = [] if identical else [
        "dispatched client step diverged from the seed-direct numpy replica"
    ]

    def best_per_step(step, *step_args):
        best = float("inf")
        step(*step_args)  # warm-up
        for _ in range(max(repeats, 2)):
            start = time.perf_counter()
            for _ in range(inner):
                step(*step_args)
            best = min(best, (time.perf_counter() - start) / inner)
        return best

    model, params = fresh_legs()
    optimizer = SGD(model.parameters(), lr=lr, momentum=momentum)
    bufs = [None] * len(params)
    direct_s = best_per_step(_direct_cnn_step, params, bufs, x, y, lr, momentum)
    dispatched_s = best_per_step(dispatched_step, model, optimizer)
    ratio = dispatched_s / direct_s

    emit(f"{'model':>8} {'batch':>6} {'direct (ms)':>12} {'dispatched (ms)':>16} "
         f"{'ratio':>7} {'bit-identical':>14}")
    emit(f"{model_name:>8} {batch:>6} {direct_s * 1e3:>12.3f} "
         f"{dispatched_s * 1e3:>16.3f} {ratio:>6.2f}x {str(identical):>14}")
    if not smoke and ratio > 1.0 + max_overhead:
        failures.append(
            f"array-backend dispatch overhead {ratio:.3f}x direct numpy "
            f"(bar: <= {1.0 + max_overhead:.2f}x)"
        )
    elif smoke:
        emit("  (overhead bar skipped in smoke mode: sub-ms step, jitter-bound)")
    rows = [
        {
            "model": model_name,
            "batch": batch,
            "direct_s": direct_s,
            "dispatched_s": dispatched_s,
            "ratio": ratio,
            "bit_identical": identical,
        }
    ]
    return rows, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small K / tiny CNN; determinism check + timing without bars",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object (stdout + artifact file)",
    )
    parser.add_argument(
        "--json-out",
        default="BENCH_client_execution.json",
        help="artifact path written when --json is given",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="process-vs-serial bar at the largest K (multi-core hosts only)",
    )
    parser.add_argument(
        "--max-streaming-ratio",
        type=float,
        default=1.05,
        help=(
            "streaming/gathered collect wall-clock bar on the process "
            "backend (noise headroom over the <= 1.0 target)"
        ),
    )
    parser.add_argument(
        "--max-dispatch-overhead",
        type=float,
        default=0.05,
        help=(
            "array-backend dispatch overhead bar: dispatched client step "
            "<= (1 + this) x the seed-direct numpy replica (full runs only)"
        ),
    )
    parser.add_argument(
        "--max-async-ratio",
        type=float,
        default=0.7,
        help=(
            "async-vs-sync fit wall-clock bar at S > 0 under seeded "
            "stragglers (full runs on >= 4 cores only)"
        ),
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    emit = (lambda line: None) if args.json else print
    cores = os.cpu_count() or 1

    if args.smoke:
        ks, input_size = (4,), 8
    else:
        ks, input_size = (10, 50), 16

    emit(f"seed CNN input {input_size}x{input_size}, {cores} cores, "
         f"repeats={args.repeats}")
    emit(f"{'K':>4} {'serial (s)':>12} {'thread (s)':>12} {'process (s)':>12} "
         f"{'thr x':>7} {'proc x':>7}")

    rows = []
    failures = []
    for k in ks:
        timings = {
            execution: time_collect(make_config(k, input_size, execution), args.repeats)
            for execution in BACKENDS
        }
        thr_x = timings["serial"] / timings["thread"]
        proc_x = timings["serial"] / timings["process"]
        emit(
            f"{k:>4} {timings['serial']:>12.3f} {timings['thread']:>12.3f} "
            f"{timings['process']:>12.3f} {thr_x:>6.2f}x {proc_x:>6.2f}x"
        )
        rows.append(
            {
                "k": k,
                "serial_s": timings["serial"],
                "thread_s": timings["thread"],
                "process_s": timings["process"],
                "thread_speedup": thr_x,
                "process_speedup": proc_x,
            }
        )
        if k == max(ks) and not args.smoke:
            if cores >= 4:
                if proc_x < args.min_speedup:
                    failures.append(
                        f"K={k}: process speedup {proc_x:.2f}x below the "
                        f"{args.min_speedup}x bar on a {cores}-core host"
                    )
            else:
                emit(
                    f"  (speedup bar skipped: {cores} cores < 4 — parallel "
                    "collect cannot beat serial here)"
                )

    emit("\n== streaming vs gathered collect ==")
    stream_rows, stream_failures = run_streaming_overlap(
        max(ks), input_size, args.repeats, cores, args.smoke,
        args.max_streaming_ratio, emit,
    )
    failures += stream_failures

    emit("\n== cross-backend determinism (gathered reference vs streaming) ==")
    deterministic = histories_bit_identical(min(ks), input_size, emit)
    if not deterministic:
        failures.append("histories/pools diverged across execution backends")

    emit("\n== array-backend dispatch overhead (seed-direct vs dispatched) ==")
    dispatch_rows, dispatch_failures = run_backend_dispatch(
        args.smoke, args.repeats, args.max_dispatch_overhead, emit
    )
    failures += dispatch_failures

    emit("\n== async bounded-staleness rounds vs sync (seeded stragglers) ==")
    async_rows, async_failures = run_async_rounds(
        args.repeats, cores, args.smoke, args.max_async_ratio, emit
    )
    failures += async_failures

    payload = {
        "cores": cores,
        "input_size": input_size,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "collect": rows,
        "streaming": stream_rows,
        "backend_dispatch": dispatch_rows,
        "async_rounds": async_rows,
        "deterministic": deterministic,
        "failures": failures,
    }
    if args.json:
        blob = json.dumps(payload)
        print(blob)
        with open(args.json_out, "w") as fh:
            fh.write(blob + "\n")
    if failures:
        print("PERF REGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    emit("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
