"""Round-collect wall clock: serial vs thread vs process execution.

The ``collect`` phase trains the round's K active clients; PR 3's
execution engine makes it parallel.  This benchmark times one FedCross
round-collect on the seed CNN for each execution backend at K ∈ {10,
50} (``--smoke``: one small K) and verifies the engine's core guarantee
on the same workload: **bit-identical training histories and final pool
matrices across all three backends**.

The asserted bar — ``process`` ≥ 3× faster than ``serial`` at the
largest K — only applies on hosts with ≥ 4 CPU cores (the speedup is
physically impossible on fewer); on smaller hosts the bar is reported
as skipped so CI boxes of any shape can run the determinism check.

Run directly (not collected by the tier-1 pytest command)::

    PYTHONPATH=src python benchmarks/bench_client_execution.py           # full
    PYTHONPATH=src python benchmarks/bench_client_execution.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_client_execution.py --json    # trend

``--json`` prints one machine-readable object *and* writes it to
``BENCH_client_execution.json`` (see ``--json-out``), so every CI run
leaves a perf artifact and the trajectory is recorded per PR.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

from repro.fl.config import FLConfig
from repro.fl.simulation import FLSimulation

BACKENDS = ("serial", "thread", "process")


def make_config(
    k: int, input_size: int, execution: str, rounds: int = 2, streaming: bool = True
) -> FLConfig:
    return FLConfig(
        method="fedcross",
        dataset="synth_cifar10",
        model="cnn",
        heterogeneity=0.5,
        num_clients=k,
        participation=1.0,
        rounds=rounds,
        local_epochs=1,
        batch_size=20,
        eval_every=rounds,
        execution=execution,
        streaming=streaming,
        seed=0,
        dataset_params={
            "samples_per_client": 60,
            "num_test": 40,
            "image_shape": (3, input_size, input_size),
        },
        method_params={"alpha": 0.99},
    )


def time_collect(config: FLConfig, repeats: int) -> float:
    """Best-of-``repeats`` wall time of one round-collect."""
    sim = FLSimulation(config)
    server = sim.server
    active = server.select_cohort()
    # Warm-up: spins up worker pools / shared buffers and faults in the
    # first dispatch, so the timed runs measure steady-state rounds.
    server.collect(active, server.dispatch(active))
    best = float("inf")
    for _ in range(repeats):
        plans = server.dispatch(active)
        start = time.perf_counter()
        server.collect(active, plans)
        best = min(best, time.perf_counter() - start)
    server.executor.close()
    return best


def run_streaming_overlap(k: int, input_size: int, repeats: int, cores: int,
                          smoke: bool, max_ratio: float, emit):
    """Streaming vs gathered collect per backend (ISSUE 4 overlap).

    Streaming consumes uploads as legs land, overlapping the server's
    packing and FedCross's incremental Gram updates with still-running
    legs; gathered is the reference schedule that defers all of it to
    the end.  The asserted bar — streaming wall-clock ≤ gathered (with
    ``max_ratio`` noise headroom) on the **process** backend — only
    applies on full runs with ≥ 2 cores: with a single core there is
    nothing to overlap with, and smoke runs on shared CI boxes report
    the ratio without gating on scheduler jitter.
    """
    emit(f"{'K':>4} {'backend':>8} {'gathered (s)':>13} {'streaming (s)':>14} "
         f"{'ratio':>7}")
    rows = []
    failures = []
    for execution in BACKENDS:
        gathered = time_collect(
            make_config(k, input_size, execution, streaming=False), repeats
        )
        streaming = time_collect(
            make_config(k, input_size, execution, streaming=True), repeats
        )
        ratio = streaming / gathered
        emit(f"{k:>4} {execution:>8} {gathered:>13.3f} {streaming:>14.3f} "
             f"{ratio:>6.2f}x")
        rows.append(
            {
                "k": k,
                "backend": execution,
                "gathered_s": gathered,
                "streaming_s": streaming,
                "ratio": ratio,
            }
        )
        if execution == "process" and not smoke:
            if cores >= 2:
                if ratio > max_ratio:
                    failures.append(
                        f"K={k}: streaming collect {ratio:.2f}x gathered on the "
                        f"process backend (bar: <= {max_ratio}x)"
                    )
            else:
                emit("  (streaming bar skipped: single core — no legs to "
                     "overlap with)")
    return rows, failures


def histories_bit_identical(k: int, input_size: int, emit) -> bool:
    """Two full rounds per backend and schedule: records + pool must
    match the gathered-serial reference exactly."""
    variants = {"serial-gathered": ("serial", False)}
    for execution in BACKENDS:
        variants[f"{execution}-streaming"] = (execution, True)
    results = {}
    for label, (execution, streaming) in variants.items():
        sim = FLSimulation(make_config(k, input_size, execution, streaming=streaming))
        result = sim.run()
        results[label] = (result, np.array(sim.server.pool.matrix, copy=True))
    ref_result, ref_pool = results["serial-gathered"]
    ok = True
    for label, (got_result, got_pool) in results.items():
        if label == "serial-gathered":
            continue
        same = all(
            a.accuracy == b.accuracy
            and a.loss == b.loss
            and a.train_loss == b.train_loss
            for a, b in zip(ref_result.history.records, got_result.history.records)
        ) and np.array_equal(ref_pool, got_pool)
        emit(f"  determinism serial-gathered vs {label:>17} @ K={k}: "
             f"{'bit-identical' if same else 'DIVERGED'}")
        ok = ok and same
    return ok


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small K / tiny CNN; determinism check + timing without bars",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object (stdout + artifact file)",
    )
    parser.add_argument(
        "--json-out",
        default="BENCH_client_execution.json",
        help="artifact path written when --json is given",
    )
    parser.add_argument("--repeats", type=int, default=2)
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=3.0,
        help="process-vs-serial bar at the largest K (multi-core hosts only)",
    )
    parser.add_argument(
        "--max-streaming-ratio",
        type=float,
        default=1.05,
        help=(
            "streaming/gathered collect wall-clock bar on the process "
            "backend (noise headroom over the <= 1.0 target)"
        ),
    )
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    emit = (lambda line: None) if args.json else print
    cores = os.cpu_count() or 1

    if args.smoke:
        ks, input_size = (4,), 8
    else:
        ks, input_size = (10, 50), 16

    emit(f"seed CNN input {input_size}x{input_size}, {cores} cores, "
         f"repeats={args.repeats}")
    emit(f"{'K':>4} {'serial (s)':>12} {'thread (s)':>12} {'process (s)':>12} "
         f"{'thr x':>7} {'proc x':>7}")

    rows = []
    failures = []
    for k in ks:
        timings = {
            execution: time_collect(make_config(k, input_size, execution), args.repeats)
            for execution in BACKENDS
        }
        thr_x = timings["serial"] / timings["thread"]
        proc_x = timings["serial"] / timings["process"]
        emit(
            f"{k:>4} {timings['serial']:>12.3f} {timings['thread']:>12.3f} "
            f"{timings['process']:>12.3f} {thr_x:>6.2f}x {proc_x:>6.2f}x"
        )
        rows.append(
            {
                "k": k,
                "serial_s": timings["serial"],
                "thread_s": timings["thread"],
                "process_s": timings["process"],
                "thread_speedup": thr_x,
                "process_speedup": proc_x,
            }
        )
        if k == max(ks) and not args.smoke:
            if cores >= 4:
                if proc_x < args.min_speedup:
                    failures.append(
                        f"K={k}: process speedup {proc_x:.2f}x below the "
                        f"{args.min_speedup}x bar on a {cores}-core host"
                    )
            else:
                emit(
                    f"  (speedup bar skipped: {cores} cores < 4 — parallel "
                    "collect cannot beat serial here)"
                )

    emit("\n== streaming vs gathered collect ==")
    stream_rows, stream_failures = run_streaming_overlap(
        max(ks), input_size, args.repeats, cores, args.smoke,
        args.max_streaming_ratio, emit,
    )
    failures += stream_failures

    emit("\n== cross-backend determinism (gathered reference vs streaming) ==")
    deterministic = histories_bit_identical(min(ks), input_size, emit)
    if not deterministic:
        failures.append("histories/pools diverged across execution backends")

    payload = {
        "cores": cores,
        "input_size": input_size,
        "repeats": args.repeats,
        "smoke": args.smoke,
        "collect": rows,
        "streaming": stream_rows,
        "deterministic": deterministic,
        "failures": failures,
    }
    if args.json:
        blob = json.dumps(payload)
        print(blob)
        with open(args.json_out, "w") as fh:
            fh.write(blob + "\n")
    if failures:
        print("PERF REGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    emit("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
