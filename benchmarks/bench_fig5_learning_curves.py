"""Figure 5 — learning curves of the six methods on synthetic CIFAR-10."""

from repro.experiments.fig5 import format_fig5, run_fig5_panel


def test_fig5_learning_curves_noniid(once):
    result = once(run_fig5_panel, model="mlp", heterogeneity=0.1, seed=3)
    print("\n" + format_fig5(result))
    print(f"final ranking: {result.final_ranking()}")

    curves = result.curves()
    # every method improves from its first to best evaluation
    for method, series in curves.items():
        assert max(series) > series[0], f"{method} never improved"
    # FedCross finishes at or near the top (within 3pp of the best).
    finals = {m: s[-1] for m, s in curves.items()}
    best = max(finals.values())
    assert finals["fedcross"] >= best - 0.03


def test_fig5_learning_curves_iid(once):
    result = once(run_fig5_panel, model="mlp", heterogeneity="iid", seed=3)
    print("\n" + format_fig5(result))
    curves = result.curves()
    finals = {m: s[-1] for m, s in curves.items()}
    best = max(finals.values())
    assert finals["fedcross"] >= best - 0.05
