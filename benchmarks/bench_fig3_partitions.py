"""Figure 3 — Dirichlet client/class distributions."""

from repro.experiments.fig3 import format_fig3, run_fig3


def test_fig3_partition_heterogeneity(once):
    result = once(run_fig3, betas=(0.1, 0.5, 1.0), num_clients=100, show_clients=10, seed=0)
    print("\n" + format_fig3(result))

    c = result.concentrations
    # The paper's visual: smaller beta concentrates classes on fewer
    # clients. Concentration must be strictly monotone in beta here.
    assert c[0.1] > c[0.5] > c[1.0]
    # every class's samples exist somewhere
    for beta, counts in result.count_matrices.items():
        assert counts.shape[1] == 10
