"""Section III-C extension bench — empirical O(1/t) convergence check.

FedCross on a convex objective with Theorem 1's decaying step size:
the measured global-loss gap should fit a C/(t+lambda) envelope and
show a clearly negative log-log slope.
"""

from repro.experiments.convergence import run_convergence_probe


def test_convergence_rate_convex(once):
    result = once(run_convergence_probe, seed=0, rounds=40)
    print(
        f"\nconvergence probe: slope={result.loglog_slope:.3f} "
        f"fit c={result.fit['c']:.3f} lam={result.fit['lam']:.3f} "
        f"r2={result.fit['r2']:.3f}"
    )
    print("losses:", [round(l, 4) for l in result.losses[::5]])

    # Loss must decrease substantially over training...
    assert result.losses[-1] < result.losses[0] * 0.9
    # ...with a negative power-law trend consistent with O(1/t)
    assert result.loglog_slope < -0.2
    # ...and an inverse-t envelope that explains most of the variance.
    assert result.fit["r2"] > 0.5
