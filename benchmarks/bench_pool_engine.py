"""Server-side round overhead: PoolBuffer engine vs dict reference.

Two workloads, both on the seed CNN:

**FedCross engine** (``pool_engine``): the FedCross server's per-round
work — CoModelSel similarity selection, CrossAggr fusion and
GlobalModelGen — for pool sizes K ∈ {5, 10, 20, 50}, comparing:

* **dict**: the original per-key dict loops (kept as the
  ``_reference_*`` implementations in ``repro.core.selection`` /
  ``repro.core.aggregation``), which re-flatten all K parameter
  vectors per selection query — O(K²·P) copies per round;
* **pool**: the vectorized ``PoolBuffer`` engine — upload packing,
  one normalized Gram matmul, row-blend cross-aggregation and a
  weighted row reduction.

**Baseline aggregation** (``baseline_aggregation``): the FedAvg-family
aggregate phase for K ∈ {10, 50, 200}, comparing:

* **dict**: ``weighted_average`` over K uploaded state dicts — the
  per-key loop every baseline server used to block on;
* **pool**: the phased servers' split —  ``pack`` (per-upload
  ``PoolBuffer.set_state`` row writes, paid incrementally in the
  collect phase as uploads arrive) and ``reduce`` (the aggregate
  phase: one BLAS matvec via ``mean_state(precise=False)``).

The asserted bar is the *aggregate-phase* cost: ``reduce`` must be
≥5× cheaper than the dict loop at K=50 (the blocking server step the
phase refactor replaced).

Three further sections: **similarity** (per-round recompute vs the
incremental Gram engine), **sharded** (the full vectorized round
on row-sharded storage vs dense — asserts bit-identical global models
and gates the same-host overhead ratio of shard-local access),
**distributed** (the same round over 2 localhost shard-host processes
vs sharded — asserts bit-identity and gates the socket-RPC overhead
ratio), **robust** (the trimmed-mean round with a poisoned row —
trust-region detection, stand-in rejection and order-statistic
GlobalModelGen — vs the mean round, gating the cost of Byzantine
robustness), and **attack_matrix** (the seeded 20% sign-flip
acceptance scenario: the mean collapses ≥10 accuracy points while the
rank-based operators stay within 2 points of the attack-free run),
plus the out-of-core memmap smoke asserting no whole-pool float64
temp.

Run directly (not collected by the tier-1 pytest command)::

    PYTHONPATH=src python benchmarks/bench_pool_engine.py           # full
    PYTHONPATH=src python benchmarks/bench_pool_engine.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_pool_engine.py --json    # trend tracking

``--json`` emits one machine-readable object (per-K timings for both
workloads) for longitudinal perf tracking — printed to stdout *and*
written to ``BENCH_pool_engine.json`` (see ``--json-out``) so CI can
archive the perf trajectory per PR; ``--smoke`` uses a small CNN and
small K so CI fails loudly on a perf regression without minutes of
compute.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
import tracemalloc

import numpy as np

from repro.core.aggregation import cross_aggregate
from repro.core.gram import GramTracker
from repro.core.pool import PoolBuffer
from repro.core.selection import _reference_select_by_similarity
from repro.models import build_model
from repro.utils.layout import StateLayout
from repro.utils.params import weighted_average


def make_uploads(state, k, rng):
    """K perturbed copies of the seed state — stand-ins for client uploads."""
    return [
        {
            key: (value + 0.01 * rng.standard_normal(value.shape)).astype(value.dtype)
            if np.asarray(value).dtype.kind == "f"
            else np.asarray(value).copy()
            for key, value in state.items()
        }
        for _ in range(k)
    ]


def dict_round(uploads, param_keys, alpha=0.99):
    """One server round via the original dict-based loops."""
    k = len(uploads)
    new_pool = []
    for i in range(k):
        j = _reference_select_by_similarity(
            i, uploads, "cosine", param_keys, want_highest=False
        )
        new_pool.append(cross_aggregate(uploads[i], uploads[j], alpha))
    return weighted_average(new_pool)


def pool_round(uploads, layout, param_keys, alpha=0.99):
    """One server round via the vectorized PoolBuffer engine.

    Includes packing the uploaded dicts into the buffer — the real
    server pays that cost once per round too.
    """
    buf = PoolBuffer.from_states(uploads, layout=layout, dtype=np.float32)
    co = buf.select_collaborators("lowest", measure="cosine", param_keys=param_keys)
    new_pool = buf.cross_aggregate(co, alpha)
    return new_pool.mean_state()


def time_call(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_engine(model, ks, repeats, min_speedup_at_max_k, emit):
    """FedCross engine: dict loops vs the vectorized pool round."""
    state = model.state_dict()
    param_keys = {name for name, _ in model.named_parameters()}
    rng = np.random.default_rng(0)
    layout = StateLayout.from_state(state)
    emit(f"{'K':>4} {'dict (s)':>12} {'pool (s)':>12} {'speedup':>9}")

    failures = []
    rows = []
    for k in ks:
        uploads = make_uploads(state, k, rng)
        # Warm both paths once (BLAS thread spin-up, layout cache).
        pool_round(uploads, layout, param_keys)
        t_dict = time_call(lambda: dict_round(uploads, param_keys), repeats)
        t_pool = time_call(lambda: pool_round(uploads, layout, param_keys), repeats)
        speedup = t_dict / t_pool
        emit(f"{k:>4} {t_dict:>12.4f} {t_pool:>12.4f} {speedup:>8.1f}x")
        rows.append({"k": k, "dict_s": t_dict, "pool_s": t_pool, "speedup": speedup})

        # Sanity: both paths must agree on the resulting global model.
        ref = dict_round(uploads, param_keys)
        got = pool_round(uploads, layout, param_keys)
        for key in ref:
            np.testing.assert_allclose(got[key], ref[key], rtol=1e-4, atol=1e-6)

        if k == max(ks) and speedup < min_speedup_at_max_k:
            failures.append(
                f"engine K={k}: speedup {speedup:.1f}x below the "
                f"{min_speedup_at_max_k}x bar"
            )
    return rows, failures


def run_baselines(model, ks, repeats, min_speedup_at_k, emit):
    """FedAvg-family aggregation: weighted_average vs pool row reduction."""
    state = model.state_dict()
    rng = np.random.default_rng(1)
    layout = StateLayout.from_state(state)
    emit(
        f"{'K':>4} {'dict (s)':>12} {'pack (s)':>12} {'reduce (s)':>12} "
        f"{'agg speedup':>12}"
    )

    failures = []
    rows = []
    for k in ks:
        uploads = make_uploads(state, k, rng)
        sizes = [float(s) for s in rng.integers(10, 100, size=k)]
        buf = PoolBuffer.zeros(layout, k, dtype=np.float32)

        def pack():
            for i, u in enumerate(uploads):
                buf.set_state(i, u)

        def reduce_():
            return buf.mean_state(sizes, precise=False)

        pack()  # warm + fill the buffer the reduce step reads
        t_dict = time_call(lambda: weighted_average(uploads, sizes), repeats)
        t_pack = time_call(pack, repeats)
        t_reduce = time_call(reduce_, repeats)
        speedup = t_dict / t_reduce
        emit(
            f"{k:>4} {t_dict:>12.4f} {t_pack:>12.4f} {t_reduce:>12.4f} "
            f"{speedup:>11.1f}x"
        )
        rows.append(
            {
                "k": k,
                "dict_s": t_dict,
                "pack_s": t_pack,
                "reduce_s": t_reduce,
                "agg_speedup": speedup,
            }
        )

        # Sanity: the row reduction must match the dict loop to float32
        # rounding (it accumulates in the buffer dtype by design).
        ref = weighted_average(uploads, sizes)
        got = reduce_()
        for key in ref:
            np.testing.assert_allclose(got[key], ref[key], rtol=1e-4, atol=1e-5)

        if k == min_speedup_at_k[0] and speedup < min_speedup_at_k[1]:
            failures.append(
                f"baselines K={k}: aggregate speedup {speedup:.1f}x below the "
                f"{min_speedup_at_k[1]}x bar"
            )
    return rows, failures


def run_similarity(model, ks, repeats, min_speedup_at_max_k, emit):
    """Similarity + diagnostics: per-round recompute vs the Gram engine.

    The *recompute* column is the PR 3 server's blocking similarity
    work per round: a full cosine ``similarity_matrix`` for CoModelSel
    over the uploads, plus ``middleware_similarity`` and ``dispersion``
    on the cross-aggregated pool — three O(K·P)-data passes, two of
    them O(K²·P).

    The *gram* column is the same three results served by the
    incremental engine after the round's uploads have been streamed
    into a :class:`~repro.core.gram.GramTracker`: Gram-driven
    selection, the closed-form post-CrossAggr transform, and
    Gram-algebra similarity/dispersion — pure (K, K) work that never
    re-reads pool data.  The O(K·P)-per-upload ``update`` cost is
    timed separately because the streaming collect phase hides it
    behind still-running training legs; even charged in full it is one
    data pass per round instead of three.
    """
    state = model.state_dict()
    param_keys = {name for name, _ in model.named_parameters()}
    rng = np.random.default_rng(2)
    layout = StateLayout.from_state(state)
    alpha = 0.99
    emit(
        f"{'K':>4} {'recompute (s)':>14} {'gram (s)':>12} {'updates (s)':>12} "
        f"{'speedup':>9}"
    )

    failures = []
    rows = []
    for k in ks:
        uploads = make_uploads(state, k, rng)
        buf = PoolBuffer.from_states(uploads, layout=layout, dtype=np.float32)
        tracker = GramTracker.from_pool(buf, param_keys=param_keys)
        co = buf.select_collaborators(
            "lowest", measure="cosine", param_keys=param_keys, gram=tracker.gram
        )
        # The fused pool both paths report diagnostics on; aggregation
        # itself is outside this comparison.
        new_pool = buf.cross_aggregate(co, alpha)

        def recompute_path():
            sel = buf.select_collaborators(
                "lowest", measure="cosine", param_keys=param_keys
            )
            sim = new_pool.similarity_matrix("cosine", param_keys=param_keys)
            disp = new_pool.dispersion(param_keys=param_keys)
            return sel, sim, disp

        def gram_path():
            sel = buf.select_collaborators(
                "lowest", measure="cosine", param_keys=param_keys, gram=tracker.gram
            )
            derived = tracker.cross_aggregated(sel, alpha, pool=new_pool)
            return sel, derived.similarity(), derived.dispersion()

        def update_path():
            fresh = GramTracker(buf, param_keys=param_keys)
            for i in range(k):
                fresh.update_row(i)
            return fresh

        recompute_path()  # warm both paths (BLAS spin-up, mask caches)
        gram_path()
        t_recompute = time_call(recompute_path, repeats)
        t_gram = time_call(gram_path, repeats)
        t_updates = time_call(update_path, repeats)
        speedup = t_recompute / t_gram
        emit(
            f"{k:>4} {t_recompute:>14.4f} {t_gram:>12.4f} {t_updates:>12.4f} "
            f"{speedup:>8.1f}x"
        )
        rows.append(
            {
                "k": k,
                "recompute_s": t_recompute,
                "gram_s": t_gram,
                "update_s": t_updates,
                "speedup": speedup,
            }
        )

        # Sanity: both paths must agree on all three results within the
        # documented ulp tolerance (same co indices are not guaranteed
        # on exact ties, so compare the achieved similarity values).
        sel_r, sim_r, disp_r = recompute_path()
        sel_g, sim_g, disp_g = gram_path()
        full = buf.similarity_matrix("cosine", param_keys=param_keys)
        np.testing.assert_allclose(
            full[np.arange(k), sel_g], full[np.arange(k), sel_r], rtol=1e-9, atol=1e-9
        )
        np.testing.assert_allclose(sim_g, sim_r, rtol=1e-5, atol=1e-6)
        scale = max(abs(disp_r), 1e-12)
        assert abs(disp_g - disp_r) / scale < 1e-3, (disp_g, disp_r)

        if k == max(ks) and speedup < min_speedup_at_max_k:
            failures.append(
                f"similarity K={k}: gram-engine speedup {speedup:.1f}x below "
                f"the {min_speedup_at_max_k}x bar"
            )
    return rows, failures


def run_sharded(model, ks, repeats, max_ratio_at_max_k, emit, shards=4):
    """Sharded backend: the dense pool round vs the same round sharded.

    Times the full vectorized server round (pack, blocked-Gram cosine
    selection, cross-aggregation, GlobalModelGen) on the ``dense``
    backend and on ``sharded`` storage with ``shards`` row shards, and
    asserts the resulting global model is **bit-identical** — the
    sharded backend's core contract.  The gated metric is the same-host
    overhead ratio ``sharded / dense`` (lower is better): it captures
    the cost of shard-local views + bounded cross-shard gathers
    replacing whole-matrix views, which must stay a small constant, not
    grow with K.
    """
    state = model.state_dict()
    param_keys = {name for name, _ in model.named_parameters()}
    rng = np.random.default_rng(4)
    layout = StateLayout.from_state(state)
    emit(
        f"{'K':>4} {'shards':>7} {'dense (s)':>12} {'sharded (s)':>12} "
        f"{'ratio':>7}"
    )

    failures = []
    rows = []
    for k in ks:
        uploads = make_uploads(state, k, rng)

        def dense_round():
            return pool_round(uploads, layout, param_keys)

        def sharded_round():
            buf = PoolBuffer.from_states(
                uploads, layout=layout, dtype=np.float32,
                backend="sharded", backend_options={"shards": shards},
            )
            co = buf.select_collaborators(
                "lowest", measure="cosine", param_keys=param_keys
            )
            return buf.cross_aggregate(co, 0.99).mean_state()

        dense_round()  # warm both paths (BLAS spin-up, mask caches)
        sharded_round()
        t_dense = time_call(dense_round, repeats)
        t_sharded = time_call(sharded_round, repeats)
        ratio = t_sharded / t_dense
        emit(f"{k:>4} {shards:>7} {t_dense:>12.4f} {t_sharded:>12.4f} {ratio:>6.2f}x")
        rows.append(
            {"k": k, "shards": shards, "dense_s": t_dense,
             "sharded_s": t_sharded, "ratio": ratio}
        )

        # The acceptance bar: sharded must reproduce dense bit-for-bit.
        ref = dense_round()
        got = sharded_round()
        for key in ref:
            np.testing.assert_array_equal(got[key], ref[key])

        if k == max(ks) and ratio > max_ratio_at_max_k:
            failures.append(
                f"sharded K={k}: overhead ratio {ratio:.2f}x above the "
                f"{max_ratio_at_max_k}x bar"
            )
    return rows, failures


def run_distributed(model, ks, repeats, max_ratio_at_max_k, emit, hosts=2):
    """Distributed backend: the sharded round vs the same round over
    shard-host processes.

    Times the full vectorized server round on in-process ``sharded``
    storage and on the ``distributed`` backend (``hosts`` localhost
    worker processes behind the socket-RPC transport), asserts the
    resulting global model is **bit-identical** — the distributed
    backend's core contract — and gates the localhost RPC overhead
    ratio ``distributed / sharded`` (lower is better).  The ratio
    captures pure transport cost: framing, one socket round trip per
    row-protocol op, and the masked-dots fan-out replacing in-process
    shard loops.  It shrinks as K·P grows (fixed per-op latency
    amortises over bigger payloads), so the gate sits at the largest K.
    """
    from repro.distributed.cluster import get_cluster

    state = model.state_dict()
    param_keys = {name for name, _ in model.named_parameters()}
    rng = np.random.default_rng(5)
    layout = StateLayout.from_state(state)
    cluster = get_cluster(hosts)  # spawn once; warm fleet for every K
    emit(
        f"{'K':>4} {'hosts':>6} {'sharded (s)':>12} {'distributed (s)':>16} "
        f"{'ratio':>7}"
    )

    failures = []
    rows = []
    for k in ks:
        uploads = make_uploads(state, k, rng)

        def sharded_round():
            buf = PoolBuffer.from_states(
                uploads, layout=layout, dtype=np.float32,
                backend="sharded", backend_options={"shards": hosts},
            )
            co = buf.select_collaborators(
                "lowest", measure="cosine", param_keys=param_keys
            )
            return buf.cross_aggregate(co, 0.99).mean_state()

        def distributed_round():
            buf = PoolBuffer.from_states(
                uploads, layout=layout, dtype=np.float32,
                backend="distributed", backend_options={"cluster": cluster},
            )
            co = buf.select_collaborators(
                "lowest", measure="cosine", param_keys=param_keys
            )
            return buf.cross_aggregate(co, 0.99).mean_state()

        sharded_round()  # warm both paths (BLAS spin-up, host channels)
        distributed_round()
        t_sharded = time_call(sharded_round, repeats)
        t_distributed = time_call(distributed_round, repeats)
        ratio = t_distributed / t_sharded
        emit(
            f"{k:>4} {hosts:>6} {t_sharded:>12.4f} {t_distributed:>16.4f} "
            f"{ratio:>6.2f}x"
        )
        rows.append(
            {"k": k, "hosts": hosts, "sharded_s": t_sharded,
             "distributed_s": t_distributed, "ratio": ratio}
        )

        # The acceptance bar: distributed must reproduce sharded (and
        # therefore dense) bit-for-bit.
        ref = sharded_round()
        got = distributed_round()
        for key in ref:
            np.testing.assert_array_equal(got[key], ref[key])

        if k == max(ks) and ratio > max_ratio_at_max_k:
            failures.append(
                f"distributed K={k}: RPC overhead ratio {ratio:.2f}x above "
                f"the {max_ratio_at_max_k}x bar"
            )
    return rows, failures


def run_robust(model, ks, repeats, max_ratio_at_max_k, emit):
    """Robust aggregation overhead: trimmed-mean round vs mean round.

    Both rounds are the server's per-round aggregation work — the
    CrossAggr blend plus the GlobalModelGen combine (``mean_state``
    with the server's precise float64 accumulation on the mean path,
    the rank-based center on the robust path).  Row 0 of the pool is
    scaled by −30 — a sign-flip-magnitude outlier — so the trimmed
    round genuinely pays the whole robust bill: trust-region
    detection, stand-in rejection against the fallback pool, and a
    full order-statistic GlobalModelGen.  The gated metric is the
    ``robust / mean`` cost ratio (lower is better); the bar bounds the
    price of Byzantine robustness at the largest K.
    """
    from repro.robust.operators import build_operator

    state = model.state_dict()
    param_keys = {name for name, _ in model.named_parameters()}
    rng = np.random.default_rng(6)
    layout = StateLayout.from_state(state)
    mean_op = build_operator("mean")
    trimmed = build_operator("trimmed_mean")
    emit(f"{'K':>4} {'mean (s)':>12} {'robust (s)':>12} {'ratio':>7}")

    failures = []
    rows = []
    for k in ks:
        uploads = make_uploads(state, k, rng)
        fallback = PoolBuffer.from_states(uploads, layout=layout, dtype=np.float32)
        buf = PoolBuffer.from_states(uploads, layout=layout, dtype=np.float32)
        buf.set_row(0, buf.storage.row(0) * np.float32(-30.0))
        co = buf.select_collaborators(
            "lowest", measure="cosine", param_keys=param_keys
        )

        def mean_round():
            mean_op.cross_blend(buf, co, 0.99)
            return mean_op.combine(buf, precise=True)

        def robust_round():
            trimmed.cross_blend(buf, co, 0.99, fallback=fallback)
            return trimmed.combine(buf)

        mean_round()  # warm both paths (BLAS spin-up, mask caches)
        robust_round()
        t_mean = time_call(mean_round, repeats)
        t_robust = time_call(robust_round, repeats)
        ratio = t_robust / t_mean
        emit(f"{k:>4} {t_mean:>12.4f} {t_robust:>12.4f} {ratio:>6.2f}x")
        rows.append(
            {"k": k, "mean_s": t_mean, "robust_s": t_robust, "ratio": ratio}
        )

        # Sanity: the poisoned row is exactly what detection rejects,
        # and the rank-based combine shrugs the poison off while the
        # mean is dragged far from the clean aggregate.
        flags = trimmed._detect(buf)
        assert flags[0] and flags.sum() == 1, np.flatnonzero(flags)

        def _flat(state_dict):
            return np.concatenate(
                [np.asarray(v, dtype=np.float64).ravel() for v in state_dict.values()]
            )

        d_robust = np.linalg.norm(
            _flat(trimmed.combine(buf)) - _flat(trimmed.combine(fallback))
        )
        d_mean = np.linalg.norm(
            _flat(mean_op.combine(buf, precise=True))
            - _flat(mean_op.combine(fallback, precise=True))
        )
        assert d_mean > 10.0 * max(d_robust, 1e-12), (d_mean, d_robust)

        if k == max(ks) and ratio > max_ratio_at_max_k:
            failures.append(
                f"robust K={k}: trimmed-mean round {ratio:.2f}x the mean "
                f"round, above the {max_ratio_at_max_k}x bar"
            )
    return rows, failures


def run_attack_matrix(emit):
    """Seeded Byzantine accuracy margins on the seed CNN (the ISSUE bar).

    Runs the acceptance scenario end to end — K=10 FedCross on the
    seeded CNN, 5 rounds, 20% sign-flip adversaries under the carry
    policy — once clean and once per aggregation operator, and asserts
    the paper-level robustness claim: the plain ``mean`` collapses by
    at least 10 accuracy points while ``trimmed_mean`` and
    ``coordinate_median`` finish within 2 points of the attack-free
    run.  Every run is seeded and bitwise deterministic, so the
    reported accuracies are a stable artifact, not a flaky sample.
    """
    from repro.fl.config import FLConfig
    from repro.fl.simulation import run_simulation

    base = dict(
        method="fedcross",
        dataset="synth_cifar10",
        model="cnn_s",
        num_clients=10,
        participation=1.0,
        local_epochs=3,
        batch_size=16,
        rounds=5,
        lr=0.1,
        seed=26,
        dataset_params={
            "samples_per_client": 80,
            "num_test": 200,
            "noise": 0.3,
            "label_noise": 0.0,
        },
    )
    attack = dict(
        faults={"byzantine_frac": 0.2, "attack": "sign_flip"},
        failure_policy="carry",
    )

    def accuracy(**overrides):
        result = run_simulation(FLConfig(**{**base, **overrides}))
        return float(result.history.records[-1].accuracy)

    clean = accuracy()
    emit(f"{'aggregator':>18} {'accuracy':>9} {'margin':>8}")
    emit(f"{'(no attack)':>18} {clean:>9.3f} {'':>8}")
    failures = []
    rows = []
    for name in ("mean", "trimmed_mean", "coordinate_median"):
        acc = accuracy(aggregator=name, **attack)
        margin = acc - clean
        emit(f"{name:>18} {acc:>9.3f} {margin:>+8.3f}")
        rows.append(
            {
                "aggregator": name,
                "accuracy": acc,
                "clean_accuracy": clean,
                "margin": margin,
            }
        )
        if name == "mean" and margin > -0.10:
            failures.append(
                f"attack_matrix: mean degraded only {-margin:.3f} under "
                "20% sign-flip — the adversarial model is not biting"
            )
        if name != "mean" and margin < -0.02:
            failures.append(
                f"attack_matrix: {name} lost {-margin:.3f} accuracy under "
                "20% sign-flip, above the 2-point robustness bar"
            )
    return rows, failures


def run_out_of_core(emit):
    """Memmap + cosine selection: prove no ``(K, P)`` float64 temp.

    Shrinks the block budget to 1 MiB, runs one full server round of
    pool ops on a memmap pool whose float64 image is many times
    larger, and asserts (via tracemalloc, which tracks NumPy data
    allocations; the memmap pages themselves are file-backed and
    untracked) that peak traced allocation stays well under one
    whole-pool float64 temporary.
    """
    budget = 1 << 20
    k = 32
    model = build_model("cnn", seed=0, input_shape=(3, 16, 16), num_classes=10)
    state = model.state_dict()
    param_keys = {name for name, _ in model.named_parameters()}
    pool = PoolBuffer.broadcast(state, k, dtype=np.float32, backend="memmap")
    rng = np.random.default_rng(3)
    p = pool.num_scalars
    for i in range(k):  # perturb row by row — no (K, P) host copy
        pool.matrix[i] += 0.01 * rng.standard_normal(p).astype(np.float32)
    full_f64 = k * p * 8

    previous = os.environ.get("REPRO_POOL_BLOCK_BYTES")
    os.environ["REPRO_POOL_BLOCK_BYTES"] = str(budget)
    try:
        tracemalloc.start()
        tracker = GramTracker.from_pool(pool, param_keys=param_keys)
        co = pool.select_collaborators(
            "lowest", measure="cosine", param_keys=param_keys, gram=tracker.gram
        )
        fused = pool.cross_aggregate(co, 0.99)
        derived = tracker.cross_aggregated(co, 0.99, pool=fused)
        derived.similarity()
        derived.dispersion()
        fused.similarity_matrix("cosine", param_keys=param_keys)
        fused.similarity_to(0, param_keys=param_keys)
        fused.dispersion(param_keys=param_keys)
        fused.mean_state(precise=True)
        _, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
        if previous is None:
            os.environ.pop("REPRO_POOL_BLOCK_BYTES", None)
        else:
            os.environ["REPRO_POOL_BLOCK_BYTES"] = previous

    emit(
        f"K={k}, P={p:,}: whole-pool float64 would be {full_f64 / 1e6:.1f} MB, "
        f"peak traced allocation {peak / 1e6:.1f} MB "
        f"(block budget {budget / 1e6:.1f} MB)"
    )
    failures = []
    if peak >= full_f64 / 2:
        failures.append(
            f"out-of-core round allocated {peak / 1e6:.1f} MB "
            f"(>= half a whole-pool float64 temp of {full_f64 / 1e6:.1f} MB) — "
            "a (K, P) cast is back on the cosine path"
        )
    return {"k": k, "p": p, "peak_bytes": int(peak), "full_f64_bytes": int(full_f64)}, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CNN, small K, relaxed speedup bars (CI regression guard)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object for trend tracking",
    )
    parser.add_argument(
        "--json-out",
        default="BENCH_pool_engine.json",
        help="artifact path written when --json is given",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    emit = (lambda line: None) if args.json else print

    if args.smoke:
        # Deliberately generous bars: shared CI runners are noisy — the
        # smoke bars still catch a true regression (the engine falling
        # behind the dict loops) without flaking on scheduler jitter.
        input_shape = (3, 8, 8)
        engine_ks, engine_bar = (5, 10), 1.2
        base_ks, base_bar = (5, 10), (10, 1.2)
        sim_ks, sim_bar = (5, 10), 3.0
        shard_ks, shard_bar = (5, 10), 3.0
        dist_ks, dist_bar = (5, 10), 10.0
        robust_ks, robust_bar = (5, 10), 3.0
    else:
        input_shape = (3, 32, 32)
        engine_ks, engine_bar = (5, 10, 20, 50), 5.0
        base_ks, base_bar = (10, 50, 200), (50, 5.0)
        sim_ks, sim_bar = (10, 50), 5.0
        shard_ks, shard_bar = (10, 50), 2.5
        dist_ks, dist_bar = (10, 50), 10.0
        robust_ks, robust_bar = (10, 50), 2.0

    model = build_model("cnn", seed=0, input_shape=input_shape, num_classes=10)
    emit(
        f"seed CNN input_shape={input_shape}: "
        f"{model.num_parameters():,} params, repeats={args.repeats}"
    )

    emit("\n== FedCross engine: dict round vs pool round ==")
    engine_rows, failures = run_engine(
        model, engine_ks, args.repeats, engine_bar, emit
    )
    emit("\n== Baseline aggregation: weighted_average vs pool row reduction ==")
    base_rows, base_failures = run_baselines(
        model, base_ks, args.repeats, base_bar, emit
    )
    failures += base_failures

    emit("\n== Similarity + diagnostics: per-round recompute vs Gram engine ==")
    sim_rows, sim_failures = run_similarity(
        model, sim_ks, args.repeats, sim_bar, emit
    )
    failures += sim_failures

    emit("\n== Sharded backend: dense round vs sharded round ==")
    shard_rows, shard_failures = run_sharded(
        model, shard_ks, args.repeats, shard_bar, emit
    )
    failures += shard_failures

    emit("\n== Distributed backend: sharded round vs 2 shard-host processes ==")
    dist_rows, dist_failures = run_distributed(
        model, dist_ks, args.repeats, dist_bar, emit
    )
    failures += dist_failures

    emit("\n== Robust aggregation: trimmed-mean round vs mean round ==")
    robust_rows, robust_failures = run_robust(
        model, robust_ks, args.repeats, robust_bar, emit
    )
    failures += robust_failures

    emit("\n== Attack matrix: seeded 20% sign-flip accuracy margins ==")
    attack_rows, attack_failures = run_attack_matrix(emit)
    failures += attack_failures

    emit("\n== Out-of-core round: memmap pool, 1 MiB block budget ==")
    ooc_row, ooc_failures = run_out_of_core(emit)
    failures += ooc_failures

    if args.json:
        blob = json.dumps(
            {
                "params": model.num_parameters(),
                "input_shape": list(input_shape),
                "repeats": args.repeats,
                "smoke": args.smoke,
                "pool_engine": engine_rows,
                "baseline_aggregation": base_rows,
                "similarity": sim_rows,
                "sharded": shard_rows,
                "distributed": dist_rows,
                "robust": robust_rows,
                "attack_matrix": attack_rows,
                "out_of_core": ooc_row,
                "failures": failures,
            }
        )
        print(blob)
        with open(args.json_out, "w") as fh:
            fh.write(blob + "\n")
    if failures:
        print("PERF REGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    emit("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
