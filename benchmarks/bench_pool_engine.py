"""Server-side round overhead: PoolBuffer engine vs dict reference.

Measures the FedCross server's per-round work — CoModelSel similarity
selection, CrossAggr fusion and GlobalModelGen — for middleware pool
sizes K ∈ {5, 10, 20, 50} on the seed CNN, comparing:

* **dict**: the original per-key dict loops (kept as the
  ``_reference_*`` implementations in ``repro.core.selection`` /
  ``repro.core.aggregation``), which re-flatten all K parameter
  vectors per selection query — O(K²·P) copies per round;
* **pool**: the vectorized ``PoolBuffer`` engine — upload packing,
  one normalized Gram matmul, row-blend cross-aggregation and a
  weighted row reduction.

Run directly (not collected by the tier-1 pytest command)::

    PYTHONPATH=src python benchmarks/bench_pool_engine.py           # full
    PYTHONPATH=src python benchmarks/bench_pool_engine.py --smoke   # CI

The full run asserts the ≥5× speedup acceptance bar at the largest K;
``--smoke`` uses a small CNN and K ∈ {5, 10} so CI fails loudly on a
perf regression without minutes of compute.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.core.aggregation import cross_aggregate
from repro.core.pool import PoolBuffer
from repro.core.selection import _reference_select_by_similarity
from repro.models import build_model
from repro.utils.params import weighted_average


def make_uploads(state, k, rng):
    """K perturbed copies of the seed state — stand-ins for client uploads."""
    return [
        {
            key: (value + 0.01 * rng.standard_normal(value.shape)).astype(value.dtype)
            if np.asarray(value).dtype.kind == "f"
            else np.asarray(value).copy()
            for key, value in state.items()
        }
        for _ in range(k)
    ]


def dict_round(uploads, param_keys, alpha=0.99):
    """One server round via the original dict-based loops."""
    k = len(uploads)
    new_pool = []
    for i in range(k):
        j = _reference_select_by_similarity(
            i, uploads, "cosine", param_keys, want_highest=False
        )
        new_pool.append(cross_aggregate(uploads[i], uploads[j], alpha))
    return weighted_average(new_pool)


def pool_round(uploads, layout, param_keys, alpha=0.99):
    """One server round via the vectorized PoolBuffer engine.

    Includes packing the uploaded dicts into the buffer — the real
    server pays that cost once per round too.
    """
    buf = PoolBuffer.from_states(uploads, layout=layout, dtype=np.float32)
    co = buf.select_collaborators("lowest", measure="cosine", param_keys=param_keys)
    new_pool = buf.cross_aggregate(co, alpha)
    return new_pool.mean_state()


def time_call(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run(ks, input_shape, repeats, min_speedup_at_max_k):
    model = build_model("cnn", seed=0, input_shape=input_shape, num_classes=10)
    state = model.state_dict()
    param_keys = {name for name, _ in model.named_parameters()}
    rng = np.random.default_rng(0)
    print(
        f"seed CNN input_shape={input_shape}: "
        f"{model.num_parameters():,} params, repeats={repeats}"
    )
    print(f"{'K':>4} {'dict (s)':>12} {'pool (s)':>12} {'speedup':>9}")

    failures = []
    for k in ks:
        uploads = make_uploads(state, k, rng)
        from repro.utils.layout import StateLayout

        layout = StateLayout.from_state(state)
        # Warm both paths once (BLAS thread spin-up, layout cache).
        pool_round(uploads, layout, param_keys)
        t_dict = time_call(lambda: dict_round(uploads, param_keys), repeats)
        t_pool = time_call(lambda: pool_round(uploads, layout, param_keys), repeats)
        speedup = t_dict / t_pool
        print(f"{k:>4} {t_dict:>12.4f} {t_pool:>12.4f} {speedup:>8.1f}x")

        # Sanity: both paths must agree on the resulting global model.
        ref = dict_round(uploads, param_keys)
        got = pool_round(uploads, layout, param_keys)
        for key in ref:
            np.testing.assert_allclose(got[key], ref[key], rtol=1e-4, atol=1e-6)

        if k == max(ks) and speedup < min_speedup_at_max_k:
            failures.append(
                f"K={k}: speedup {speedup:.1f}x below the "
                f"{min_speedup_at_max_k}x bar"
            )
    return failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CNN, K in {5, 10}, relaxed speedup bar (CI regression guard)",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    if args.smoke:
        # Deliberately generous bar: the smoke workload typically shows
        # ~2.4x, but shared CI runners are noisy — 1.2x still catches a
        # true regression (the engine falling behind the dict loops)
        # without flaking on scheduler jitter.
        failures = run(
            ks=(5, 10),
            input_shape=(3, 8, 8),
            repeats=args.repeats,
            min_speedup_at_max_k=1.2,
        )
    else:
        failures = run(
            ks=(5, 10, 20, 50),
            input_shape=(3, 32, 32),
            repeats=args.repeats,
            min_speedup_at_max_k=5.0,
        )
    if failures:
        print("PERF REGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    print("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
