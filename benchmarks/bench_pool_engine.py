"""Server-side round overhead: PoolBuffer engine vs dict reference.

Two workloads, both on the seed CNN:

**FedCross engine** (``pool_engine``): the FedCross server's per-round
work — CoModelSel similarity selection, CrossAggr fusion and
GlobalModelGen — for pool sizes K ∈ {5, 10, 20, 50}, comparing:

* **dict**: the original per-key dict loops (kept as the
  ``_reference_*`` implementations in ``repro.core.selection`` /
  ``repro.core.aggregation``), which re-flatten all K parameter
  vectors per selection query — O(K²·P) copies per round;
* **pool**: the vectorized ``PoolBuffer`` engine — upload packing,
  one normalized Gram matmul, row-blend cross-aggregation and a
  weighted row reduction.

**Baseline aggregation** (``baseline_aggregation``): the FedAvg-family
aggregate phase for K ∈ {10, 50, 200}, comparing:

* **dict**: ``weighted_average`` over K uploaded state dicts — the
  per-key loop every baseline server used to block on;
* **pool**: the phased servers' split —  ``pack`` (per-upload
  ``PoolBuffer.set_state`` row writes, paid incrementally in the
  collect phase as uploads arrive) and ``reduce`` (the aggregate
  phase: one BLAS matvec via ``mean_state(precise=False)``).

The asserted bar is the *aggregate-phase* cost: ``reduce`` must be
≥5× cheaper than the dict loop at K=50 (the blocking server step the
phase refactor replaced).

Run directly (not collected by the tier-1 pytest command)::

    PYTHONPATH=src python benchmarks/bench_pool_engine.py           # full
    PYTHONPATH=src python benchmarks/bench_pool_engine.py --smoke   # CI
    PYTHONPATH=src python benchmarks/bench_pool_engine.py --json    # trend tracking

``--json`` emits one machine-readable object (per-K timings for both
workloads) for longitudinal perf tracking — printed to stdout *and*
written to ``BENCH_pool_engine.json`` (see ``--json-out``) so CI can
archive the perf trajectory per PR; ``--smoke`` uses a small CNN and
small K so CI fails loudly on a perf regression without minutes of
compute.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

import numpy as np

from repro.core.aggregation import cross_aggregate
from repro.core.pool import PoolBuffer
from repro.core.selection import _reference_select_by_similarity
from repro.models import build_model
from repro.utils.layout import StateLayout
from repro.utils.params import weighted_average


def make_uploads(state, k, rng):
    """K perturbed copies of the seed state — stand-ins for client uploads."""
    return [
        {
            key: (value + 0.01 * rng.standard_normal(value.shape)).astype(value.dtype)
            if np.asarray(value).dtype.kind == "f"
            else np.asarray(value).copy()
            for key, value in state.items()
        }
        for _ in range(k)
    ]


def dict_round(uploads, param_keys, alpha=0.99):
    """One server round via the original dict-based loops."""
    k = len(uploads)
    new_pool = []
    for i in range(k):
        j = _reference_select_by_similarity(
            i, uploads, "cosine", param_keys, want_highest=False
        )
        new_pool.append(cross_aggregate(uploads[i], uploads[j], alpha))
    return weighted_average(new_pool)


def pool_round(uploads, layout, param_keys, alpha=0.99):
    """One server round via the vectorized PoolBuffer engine.

    Includes packing the uploaded dicts into the buffer — the real
    server pays that cost once per round too.
    """
    buf = PoolBuffer.from_states(uploads, layout=layout, dtype=np.float32)
    co = buf.select_collaborators("lowest", measure="cosine", param_keys=param_keys)
    new_pool = buf.cross_aggregate(co, alpha)
    return new_pool.mean_state()


def time_call(fn, repeats):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def run_engine(model, ks, repeats, min_speedup_at_max_k, emit):
    """FedCross engine: dict loops vs the vectorized pool round."""
    state = model.state_dict()
    param_keys = {name for name, _ in model.named_parameters()}
    rng = np.random.default_rng(0)
    layout = StateLayout.from_state(state)
    emit(f"{'K':>4} {'dict (s)':>12} {'pool (s)':>12} {'speedup':>9}")

    failures = []
    rows = []
    for k in ks:
        uploads = make_uploads(state, k, rng)
        # Warm both paths once (BLAS thread spin-up, layout cache).
        pool_round(uploads, layout, param_keys)
        t_dict = time_call(lambda: dict_round(uploads, param_keys), repeats)
        t_pool = time_call(lambda: pool_round(uploads, layout, param_keys), repeats)
        speedup = t_dict / t_pool
        emit(f"{k:>4} {t_dict:>12.4f} {t_pool:>12.4f} {speedup:>8.1f}x")
        rows.append({"k": k, "dict_s": t_dict, "pool_s": t_pool, "speedup": speedup})

        # Sanity: both paths must agree on the resulting global model.
        ref = dict_round(uploads, param_keys)
        got = pool_round(uploads, layout, param_keys)
        for key in ref:
            np.testing.assert_allclose(got[key], ref[key], rtol=1e-4, atol=1e-6)

        if k == max(ks) and speedup < min_speedup_at_max_k:
            failures.append(
                f"engine K={k}: speedup {speedup:.1f}x below the "
                f"{min_speedup_at_max_k}x bar"
            )
    return rows, failures


def run_baselines(model, ks, repeats, min_speedup_at_k, emit):
    """FedAvg-family aggregation: weighted_average vs pool row reduction."""
    state = model.state_dict()
    rng = np.random.default_rng(1)
    layout = StateLayout.from_state(state)
    emit(
        f"{'K':>4} {'dict (s)':>12} {'pack (s)':>12} {'reduce (s)':>12} "
        f"{'agg speedup':>12}"
    )

    failures = []
    rows = []
    for k in ks:
        uploads = make_uploads(state, k, rng)
        sizes = [float(s) for s in rng.integers(10, 100, size=k)]
        buf = PoolBuffer.zeros(layout, k, dtype=np.float32)

        def pack():
            for i, u in enumerate(uploads):
                buf.set_state(i, u)

        def reduce_():
            return buf.mean_state(sizes, precise=False)

        pack()  # warm + fill the buffer the reduce step reads
        t_dict = time_call(lambda: weighted_average(uploads, sizes), repeats)
        t_pack = time_call(pack, repeats)
        t_reduce = time_call(reduce_, repeats)
        speedup = t_dict / t_reduce
        emit(
            f"{k:>4} {t_dict:>12.4f} {t_pack:>12.4f} {t_reduce:>12.4f} "
            f"{speedup:>11.1f}x"
        )
        rows.append(
            {
                "k": k,
                "dict_s": t_dict,
                "pack_s": t_pack,
                "reduce_s": t_reduce,
                "agg_speedup": speedup,
            }
        )

        # Sanity: the row reduction must match the dict loop to float32
        # rounding (it accumulates in the buffer dtype by design).
        ref = weighted_average(uploads, sizes)
        got = reduce_()
        for key in ref:
            np.testing.assert_allclose(got[key], ref[key], rtol=1e-4, atol=1e-5)

        if k == min_speedup_at_k[0] and speedup < min_speedup_at_k[1]:
            failures.append(
                f"baselines K={k}: aggregate speedup {speedup:.1f}x below the "
                f"{min_speedup_at_k[1]}x bar"
            )
    return rows, failures


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="small CNN, small K, relaxed speedup bars (CI regression guard)",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="emit one machine-readable JSON object for trend tracking",
    )
    parser.add_argument(
        "--json-out",
        default="BENCH_pool_engine.json",
        help="artifact path written when --json is given",
    )
    parser.add_argument("--repeats", type=int, default=3)
    args = parser.parse_args(argv)
    if args.repeats < 1:
        parser.error("--repeats must be >= 1")

    emit = (lambda line: None) if args.json else print

    if args.smoke:
        # Deliberately generous bars: shared CI runners are noisy — the
        # smoke bars still catch a true regression (the engine falling
        # behind the dict loops) without flaking on scheduler jitter.
        input_shape = (3, 8, 8)
        engine_ks, engine_bar = (5, 10), 1.2
        base_ks, base_bar = (5, 10), (10, 1.2)
    else:
        input_shape = (3, 32, 32)
        engine_ks, engine_bar = (5, 10, 20, 50), 5.0
        base_ks, base_bar = (10, 50, 200), (50, 5.0)

    model = build_model("cnn", seed=0, input_shape=input_shape, num_classes=10)
    emit(
        f"seed CNN input_shape={input_shape}: "
        f"{model.num_parameters():,} params, repeats={args.repeats}"
    )

    emit("\n== FedCross engine: dict round vs pool round ==")
    engine_rows, failures = run_engine(
        model, engine_ks, args.repeats, engine_bar, emit
    )
    emit("\n== Baseline aggregation: weighted_average vs pool row reduction ==")
    base_rows, base_failures = run_baselines(
        model, base_ks, args.repeats, base_bar, emit
    )
    failures += base_failures

    if args.json:
        blob = json.dumps(
            {
                "params": model.num_parameters(),
                "input_shape": list(input_shape),
                "repeats": args.repeats,
                "smoke": args.smoke,
                "pool_engine": engine_rows,
                "baseline_aggregation": base_rows,
                "failures": failures,
            }
        )
        print(blob)
        with open(args.json_out, "w") as fh:
            fh.write(blob + "\n")
    if failures:
        print("PERF REGRESSION: " + "; ".join(failures), file=sys.stderr)
        return 1
    emit("ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
