"""Table I — communication overhead and method categories."""

from repro.experiments.table1 import format_table1, run_table1
from repro.models import build_model


def test_table1_comm_overhead(once):
    model = build_model("mlp", seed=0, input_dim=192, num_classes=10)
    rows = once(
        run_table1,
        k_clients=10,
        model_params=model.num_parameters(),
        generator_params=5_000,
    )
    print("\n" + format_table1(rows))

    by_method = {r.method: r for r in rows}
    # FedCross moves exactly as much as FedAvg (the paper's headline).
    assert (
        by_method["fedcross"].round_cost_model_equivalents
        == by_method["fedavg"].round_cost_model_equivalents
    )
    # SCAFFOLD is the most expensive; FedGen sits strictly between.
    assert (
        by_method["scaffold"].round_cost_model_equivalents
        > by_method["fedgen"].round_cost_model_equivalents
        > by_method["fedavg"].round_cost_model_equivalents
    )
    # Categories match Table I.
    assert by_method["fedcross"].category == "Multi-Model Guided"
    assert by_method["scaffold"].overhead_class == "High"
    assert by_method["fedgen"].overhead_class == "Medium"
