"""Figure 7 — impact of the total number of clients N."""

from repro.experiments.fig7 import format_fig7, run_fig7


def test_fig7_total_clients(once):
    result = once(run_fig7, n_values=(10, 20, 40), seed=0, beta=0.5)
    print("\n" + format_fig7(result))

    by_n = result.accuracy_by_n()
    for method, accs in by_n.items():
        assert all(a > 0.1 for a in accs), f"{method} at chance"
    # Fixed sample budget: more clients = less data each = lower
    # accuracy at a fixed round budget (the paper's slower convergence).
    for method, accs in by_n.items():
        assert accs[0] >= accs[-1] - 0.05, f"{method} should degrade with N"
