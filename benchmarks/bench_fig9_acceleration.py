"""Figure 9 — propeller-model / dynamic-alpha training acceleration."""

from repro.experiments.fig9 import format_fig9, run_fig9


def test_fig9_acceleration_noniid(once):
    result = once(run_fig9, heterogeneity=0.1, seed=0, alpha=0.97)
    print("\n" + format_fig9(result))

    # Paper: every accelerated variant trains faster early on.
    vanilla_early = result.early_auc("vanilla", points=3)
    accelerated = {v: result.early_auc(v, points=3) for v in ("pm", "da", "pm_da")}
    print(f"early AUC vanilla={vanilla_early:.3f} accelerated={accelerated}")
    assert max(accelerated.values()) > vanilla_early
    # and no variant destroys final accuracy (paper: slight cost only)
    vanilla_final = result.histories["vanilla"].accuracies[-1]
    for variant, history in result.histories.items():
        assert history.accuracies[-1] > vanilla_final - 0.15, variant


def test_fig9_acceleration_iid(once):
    result = once(run_fig9, heterogeneity="iid", seed=0, alpha=0.97)
    print("\n" + format_fig9(result))
    vanilla_early = result.early_auc("vanilla", points=3)
    accelerated = {v: result.early_auc(v, points=3) for v in ("pm", "da", "pm_da")}
    # IID training leaves less for the warm-ups to fix: assert
    # non-inferiority early (the non-IID bench asserts strict gains,
    # matching the paper's larger non-IID effect).
    assert max(accelerated.values()) > vanilla_early - 0.02
