"""Design-choice ablations beyond the paper (DESIGN.md extensions)."""

from repro.experiments.ablations import (
    run_shuffle_ablation,
    run_similarity_measure_ablation,
)


def test_shuffle_ablation(once):
    """Algorithm 1 line 5: dispatch shuffling. Without it each
    middleware model keeps revisiting the same clients."""
    result = once(run_shuffle_ablation, seed=0, beta=0.1, alpha=0.9)
    tails = result.tail_accuracies()
    print(f"\nshuffle ablation tails: {tails}")
    # both arms must learn; shuffling must not be materially worse
    assert all(a > 0.2 for a in tails.values())
    assert tails["shuffle_on"] >= tails["shuffle_off"] - 0.05


def test_similarity_measure_ablation(once):
    """Cosine (paper) vs negative Euclidean (future work) in CoModelSel."""
    result = once(run_similarity_measure_ablation, seed=0, beta=1.0, alpha=0.9)
    tails = result.tail_accuracies()
    print(f"\nsimilarity measure ablation tails: {tails}")
    assert all(a > 0.2 for a in tails.values())
