"""Figure 8 — FedCross learning curves across alpha settings."""

from repro.experiments.fig8 import format_fig8, run_fig8


def test_fig8_alpha_curves_lowest(once):
    result = once(
        run_fig8, strategy="lowest", alphas=(0.5, 0.9, 0.99, 0.999), seed=0
    )
    print("\n" + format_fig8(result))

    finals = result.final_by_alpha()
    # alpha = 0.999 collapses relative to the best mid-range alpha
    best_mid = max(finals[0.9], finals[0.99])
    assert finals[0.999] < best_mid
    # all mid-range alphas learn
    assert finals[0.9] > 0.2 and finals[0.5] > 0.2


def test_fig8_alpha_curves_in_order(once):
    result = once(run_fig8, strategy="in_order", alphas=(0.5, 0.9, 0.999), seed=0)
    print("\n" + format_fig8(result))
    finals = result.final_by_alpha()
    assert finals[0.999] < max(finals[0.5], finals[0.9])
