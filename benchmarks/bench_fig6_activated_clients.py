"""Figure 6 — impact of the number of activated clients K."""

from repro.experiments.fig6 import format_fig6, run_fig6


def test_fig6_activated_clients(once):
    result = once(run_fig6, k_values=(2, 5, 10), seed=0, beta=0.1)
    print("\n" + format_fig6(result))

    by_k = result.accuracy_by_k()
    # every method learns at every K
    for method, accs in by_k.items():
        assert all(a > 0.12 for a in accs), f"{method} at chance"
    # FedCross is competitive at the largest K (the paper has it winning
    # at every K; we assert non-inferiority at quick scale).
    k_max_idx = len(result.k_values) - 1
    best_baseline = max(
        accs[k_max_idx] for m, accs in by_k.items() if m != "fedcross"
    )
    assert by_k["fedcross"][k_max_idx] >= best_baseline - 0.06
