"""Figure 4 / RQ1 — loss landscapes of FedAvg vs FedCross."""

from repro.experiments.fig4 import format_fig4, run_fig4


def test_fig4_loss_landscapes(once):
    result = once(run_fig4, seed=0, heterogeneities=(0.1, "iid"), radius=0.5, grid=7)
    print("\n" + format_fig4(result))

    # The paper's RQ1 claim: FedCross global models sit in flatter
    # valleys. Compare the rise-at-radius sharpness per heterogeneity.
    for het in ("b=0.1", "iid"):
        fa = result.sharpness[("fedavg", het)]
        fc = result.sharpness[("fedcross", het)]
        # FedCross must not be sharper by more than a hair; typically it
        # is strictly flatter (recorded in EXPERIMENTS.md).
        assert fc["rise_full"] <= fa["rise_full"] * 1.25 + 0.05
    # all scans are valid bowls: loss rises away from the centre
    for scan in result.scans.values():
        assert scan.losses.max() >= scan.center_loss - 1e-6
