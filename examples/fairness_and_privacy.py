"""Per-client fairness + differential-privacy extension demo.

Two extensions beyond the paper's tables:

1. *Fairness*: the paper motivates FedCross with a global model that
   serves all clients (Figure 1). We evaluate FedAvg's and FedCross's
   global models on every client's own shard and compare dispersion
   (std / worst client / Jain index).
2. *Privacy* (Section IV-F): the paper claims FedCross integrates
   FedAvg-compatible privacy techniques. We run FedCross with DP-SGD
   local training (gradient clipping + Gaussian noise) and report the
   accuracy cost.

Usage::

    python examples/fairness_and_privacy.py
"""

import numpy as np

from repro.data.federated import build_federated_dataset
from repro.fl.config import FLConfig
from repro.fl.fairness import evaluate_per_client, fairness_summary
from repro.fl.privacy import DPConfig, make_dp_grad_hook
from repro.fl.simulation import FLSimulation


def main() -> None:
    base = FLConfig(
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.1,
        num_clients=10,
        participation=0.5,
        rounds=30,
        local_epochs=5,
        batch_size=20,
        eval_every=10,
        seed=1,
    )
    fed = build_federated_dataset(
        base.dataset, num_clients=base.num_clients, heterogeneity=0.1, seed=1
    )

    print("== Fairness: per-client accuracy of the deployed global model ==")
    for method, params in (
        ("fedavg", {}),
        ("fedcross", {"alpha": 0.9, "selection": "lowest"}),
    ):
        sim = FLSimulation(base.with_method(method, **params), fed_dataset=fed)
        result = sim.run()
        evaluation = evaluate_per_client(sim.model, result.final_state, sim.clients)
        summary = fairness_summary(evaluation)
        print(
            f"  {method:>8}: global={result.final_accuracy:.3f} "
            f"client mean={summary['mean']:.3f} std={summary['std']:.3f} "
            f"worst={summary['worst']:.3f} jain={summary['jain_index']:.3f}"
        )

    print("\n== Privacy: FedCross with DP-SGD local training ==")
    for label, dp in (
        ("no DP", None),
        ("clip=1.0", DPConfig(clip_norm=1.0, noise_multiplier=0.0, seed=0)),
        ("clip=1.0 z=0.1", DPConfig(clip_norm=1.0, noise_multiplier=0.1, seed=0)),
    ):
        config = base.with_method("fedcross", alpha=0.9, selection="lowest")
        sim = FLSimulation(config, fed_dataset=fed)
        if dp is not None:
            hook = make_dp_grad_hook(dp)
            original_train = sim.trainer.train

            def train_with_dp(state, dataset, rng, loss_hook=None, grad_hook=None,
                              lr_override=None, _orig=original_train, _hook=hook):
                def combined(named):
                    if grad_hook is not None:
                        grad_hook(named)
                    _hook(named)
                return _orig(state, dataset, rng, loss_hook=loss_hook,
                             grad_hook=combined, lr_override=lr_override)

            sim.trainer.train = train_with_dp
        result = sim.run()
        print(f"  {label:>15}: final accuracy = {result.final_accuracy:.3f}")

    print(
        "\nReading: per-client dispersion shows how evenly the deployed "
        "model serves the federation (tiny Dirichlet shards are noisy — "
        "compare across several seeds for stable rankings); DP clipping/"
        "noise trades accuracy for privacy as expected."
    )


if __name__ == "__main__":
    main()
