"""Quickstart: train FedCross on a synthetic federated CIFAR-10.

Runs the paper's multi-model cross-aggregation scheme with default
hyper-parameters on a CPU-scaled synthetic dataset, prints the per-round
accuracy of the deployment global model, and compares against FedAvg.

Usage::

    python examples/quickstart.py            # ~30 s
    REPRO_ROUNDS=60 python examples/quickstart.py
"""

import os

from repro.api import compare_methods

ROUNDS = int(os.environ.get("REPRO_ROUNDS", 25))


def main() -> None:
    print("FedCross quickstart — synthetic CIFAR-10, Dir(0.5), 10 clients")
    print(f"rounds={ROUNDS}, 5 local epochs, SGD(lr=0.01, momentum=0.5)\n")

    results = compare_methods(
        ["fedavg", "fedcross"],
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.5,
        num_clients=10,
        participation=0.5,
        rounds=ROUNDS,
        local_epochs=5,
        batch_size=20,
        eval_every=5,
        seed=0,
        method_params={"fedcross": {"alpha": 0.9, "selection": "lowest"}},
    )

    rounds = results["fedavg"].history.rounds
    print(f"{'round':>6} | {'fedavg':>8} | {'fedcross':>8}")
    print("-" * 30)
    for i, r in enumerate(rounds):
        fa = results["fedavg"].history.accuracies[i]
        fc = results["fedcross"].history.accuracies[i]
        print(f"{r + 1:>6} | {fa:>8.3f} | {fc:>8.3f}")

    print()
    for name, result in results.items():
        print(
            f"{name:>8}: final={result.final_accuracy:.3f} "
            f"best={result.best_accuracy:.3f} "
            f"comm={result.history.total_comm_params():,} params"
        )
    print(
        "\nNote the Figure-5 shape: FedCross starts slower (fine-grained "
        "mixing) and finishes at or above FedAvg, at identical "
        "communication cost."
    )


if __name__ == "__main__":
    main()
