"""Training-acceleration variants (Figure 9, scaled).

Compares vanilla FedCross with the propeller-model (PM), dynamic-alpha
(DA) and staged PM-DA warm-ups on a non-IID federation.

Usage::

    python examples/acceleration_comparison.py
"""

from repro.experiments.fig9 import format_fig9, run_fig9


def main() -> None:
    print("FedCross acceleration variants, non-IID Dir(0.1)\n")
    result = run_fig9(heterogeneity=0.1, seed=0, alpha=0.97)
    print(format_fig9(result))

    print("\nEarly-training mean accuracy (first 3 evaluations):")
    for variant in ("vanilla", "pm", "da", "pm_da"):
        final = result.histories[variant].accuracies[-1]
        print(
            f"  {variant:>8}: early={result.early_auc(variant, 3):.3f} "
            f"final={final:.3f}"
        )
    print(
        "\nExpected shape (paper Fig. 9): accelerated variants climb "
        "faster early, at a slight final-accuracy cost."
    )


if __name__ == "__main__":
    main()
