"""Custom server callbacks and pool-storage backend selection.

Demonstrates the phased-server extension points added by the server API
redesign:

* a user-defined :class:`~repro.fl.callbacks.ServerCallback` tracking
  the evaluated accuracy trajectory and per-round communication;
* the built-in :class:`~repro.fl.callbacks.ThroughputLogger` and
  :class:`~repro.fl.callbacks.BestStateCheckpointer` (early-stop
  patience + best-state restore);
* running the same experiment on the ``memmap`` pool backend — the
  histories are bit-identical to ``dense``, only the storage medium of
  the server's ``(K, P)`` model buffers changes.

Usage::

    python examples/custom_callback.py           # ~30 s
    REPRO_ROUNDS=40 python examples/custom_callback.py
"""

import os

from repro.api import run_method
from repro.fl.callbacks import BestStateCheckpointer, ServerCallback, ThroughputLogger

ROUNDS = int(os.environ.get("REPRO_ROUNDS", 15))


class TrajectoryTracker(ServerCallback):
    """User-defined callback: accuracy trajectory + communication spend.

    Every hook receives the live server, so anything on it (ledger,
    history, pool) is observable; the per-round record carries the
    round's metrics and method extras.
    """

    def __init__(self) -> None:
        self.rounds_seen = 0
        self.accuracy_curve: list[tuple[int, float]] = []
        self.comm_params: list[int] = []

    def on_round_start(self, server, round_idx) -> None:
        self.rounds_seen += 1

    def on_round_end(self, server, record) -> None:
        self.comm_params.append(record.comm_up_params + record.comm_down_params)
        if record.accuracy is not None:
            self.accuracy_curve.append((record.round_idx, record.accuracy))

    def on_fit_end(self, server, history) -> None:
        print(
            f"[tracker] {self.rounds_seen} rounds, "
            f"{len(self.accuracy_curve)} evaluations, "
            f"{sum(self.comm_params):,} params communicated"
        )


def run(backend: str):
    tracker = TrajectoryTracker()
    checkpointer = BestStateCheckpointer(patience=6, restore=True)
    timer = ThroughputLogger(every=0)  # summary line only
    result = run_method(
        "fedcross",
        dataset="synth_cifar10",
        model="mlp",
        heterogeneity=0.5,
        num_clients=10,
        participation=0.5,
        rounds=ROUNDS,
        local_epochs=2,
        eval_every=1,
        seed=0,
        backend=backend,
        method_params={"alpha": 0.9, "selection": "lowest"},
        callbacks=[tracker, checkpointer, timer],
    )
    stopped = " (early-stopped)" if checkpointer.stopped_early else ""
    print(
        f"[{backend:>6}] best={checkpointer.best_accuracy:.3f} at round "
        f"{checkpointer.best_round + 1}{stopped}; "
        f"final history accuracy={result.final_accuracy:.3f}"
    )
    return result


def main() -> None:
    print(f"FedCross with callbacks — {ROUNDS} rounds, patience 6\n")
    dense = run("dense")
    memmap = run("memmap")
    identical = dense.history.accuracies == memmap.history.accuracies
    print(f"\ndense and memmap histories bit-identical: {identical}")


if __name__ == "__main__":
    main()
