"""Federated text tasks: Shakespeare-like next-char and Sent140-like
sentiment, both with LSTMs (the paper's Table II text rows).

Usage::

    python examples/text_federated_lstm.py
"""

from repro.api import compare_methods


def main() -> None:
    print("== Next-character prediction (synthetic Shakespeare) ==")
    char_results = compare_methods(
        ["fedavg", "fedcross"],
        dataset="synth_shakespeare",
        model="charlstm",
        num_clients=8,
        participation=0.5,
        rounds=10,
        local_epochs=3,
        batch_size=20,
        lr=0.1,
        momentum=0.9,
        seed=0,
        dataset_params={
            "samples_per_client": 100,
            "num_test": 200,
            "vocab_size": 12,
            "concentration": 0.1,
            "client_deviation": 0.2,
        },
        model_params={"hidden_size": 16, "embed_dim": 8, "num_layers": 1},
        method_params={"fedcross": {"alpha": 0.8, "selection": "lowest"}},
    )
    for name, result in char_results.items():
        print(
            f"  {name:>8}: accuracy "
            + " -> ".join(f"{a:.3f}" for a in result.history.accuracies)
        )
    print(f"  (chance = {1 / 12:.3f})\n")

    print("== Sentiment classification (synthetic Sent140) ==")
    sent_results = compare_methods(
        ["fedavg", "fedcross"],
        dataset="synth_sent140",
        model="sentlstm",
        num_clients=8,
        participation=0.5,
        rounds=12,
        local_epochs=3,
        batch_size=20,
        lr=0.1,
        momentum=0.9,
        seed=0,
        dataset_params={"samples_per_user_mean": 150, "num_test": 200},
        model_params={"hidden_size": 16, "embed_dim": 8},
        method_params={"fedcross": {"alpha": 0.8, "selection": "lowest"}},
    )
    for name, result in sent_results.items():
        print(
            f"  {name:>8}: accuracy "
            + " -> ".join(f"{a:.3f}" for a in result.history.accuracies)
        )
    print("  (chance = 0.500)")


if __name__ == "__main__":
    main()
