"""Loss-landscape flatness analysis (Figure 4 / RQ1).

Trains FedAvg and FedCross on the same non-IID federation, then scans a
filter-normalised random plane around each global model and renders the
landscapes as ASCII contours with sharpness metrics. The paper's claim:
FedCross converges into a flatter valley.

Usage::

    python examples/landscape_analysis.py
"""

from repro.experiments.fig4 import format_fig4, run_fig4


def main() -> None:
    print("Training FedAvg and FedCross, then scanning loss landscapes...\n")
    result = run_fig4(seed=0, heterogeneities=(0.1,), radius=0.6, grid=9)
    print(format_fig4(result))

    fa = result.sharpness[("fedavg", "b=0.1")]
    fc = result.sharpness[("fedcross", "b=0.1")]
    print("\nSharpness summary (lower rise = flatter valley):")
    print(f"  FedAvg   rise@r = {fa['rise_full']:.3f}   accuracy = {result.accuracies[('fedavg', 'b=0.1')]:.3f}")
    print(f"  FedCross rise@r = {fc['rise_full']:.3f}   accuracy = {result.accuracies[('fedcross', 'b=0.1')]:.3f}")
    if fc["rise_full"] < fa["rise_full"]:
        print("  -> FedCross sits in the flatter valley, matching the paper's RQ1.")
    else:
        print("  -> On this seed FedCross is not flatter; rerun with another seed.")


if __name__ == "__main__":
    main()
