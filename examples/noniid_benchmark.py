"""Six-method shoot-out across heterogeneity levels (Table II, scaled).

Runs FedAvg, FedProx, SCAFFOLD, FedGen, CluSamp and FedCross on a shared
synthetic CIFAR-10 federation at beta in {0.1, 1.0} and IID, printing a
paper-style accuracy table.

Usage::

    python examples/noniid_benchmark.py          # few minutes
    REPRO_SCALE=full python examples/noniid_benchmark.py
"""

from repro.experiments.printers import format_table
from repro.experiments.runner import ALL_METHODS, run_comparison
from repro.experiments.scale import resolve_scale
from repro.fl.config import FLConfig


def main() -> None:
    preset = resolve_scale()
    print(f"scale preset: {preset.name} ({preset.rounds} rounds, N={preset.num_clients})\n")

    rows = []
    for het in (0.1, 1.0, "iid"):
        config = FLConfig(
            dataset="synth_cifar10",
            model="mlp",
            heterogeneity=het,
            num_clients=preset.num_clients,
            participation=preset.participation,
            rounds=preset.rounds,
            local_epochs=preset.local_epochs,
            batch_size=preset.batch_size,
            eval_every=preset.eval_every,
            seed=1,
        )
        comparison = run_comparison(
            config,
            methods=ALL_METHODS,
            method_params={"fedcross": {"alpha": 0.9, "selection": "lowest"}},
        )
        label = "IID" if het == "iid" else f"Dir({het})"
        accs = {
            m: comparison.results[m].history.tail_accuracy(2) for m in ALL_METHODS
        }
        rows.append([label] + [100.0 * accs[m] for m in ALL_METHODS])
        winner = max(accs, key=accs.get)
        print(f"{label}: winner = {winner} ({100 * accs[winner]:.1f}%)")

    print()
    print(
        format_table(
            ["Heterogeneity"] + ALL_METHODS,
            rows,
            title="Test accuracy (%) — six methods on synthetic CIFAR-10",
        )
    )


if __name__ == "__main__":
    main()
