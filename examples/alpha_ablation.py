"""Alpha / selection-strategy ablation (Table III + Figure 8, scaled).

Sweeps the cross-aggregation weight alpha and the three CoModelSel
strategies, printing the accuracy grid and the learning curves for the
lowest-similarity strategy.

Usage::

    python examples/alpha_ablation.py
"""

from repro.experiments.fig8 import format_fig8, run_fig8
from repro.experiments.table3 import format_table3, run_table3


def main() -> None:
    print("Table III (scaled): alpha x strategy sweep...\n")
    table = run_table3(seed=0, alphas=(0.5, 0.9, 0.99, 0.999))
    print(format_table3(table))
    print(f"\nbest strategy per alpha: {table.best_strategy_per_alpha()}")
    print(
        "Expected shape (paper): highest-similarity weakest overall; "
        "alpha=0.999 collapses."
    )

    print("\nFigure 8 (scaled): learning curves for the lowest-similarity strategy\n")
    fig8 = run_fig8(strategy="lowest", alphas=(0.5, 0.9, 0.99, 0.999), seed=0)
    print(format_fig8(fig8))


if __name__ == "__main__":
    main()
